#ifndef ADCACHE_UTIL_FAULT_INJECTION_ENV_H_
#define ADCACHE_UTIL_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "util/env.h"

namespace adcache {

/// An Env decorator that injects I/O failures on demand, for testing error
/// propagation through the storage stack. Failures are counted-down: arm N
/// successes before the next failure, or set an error rate.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (not owned; must outlive this Env).
  explicit FaultInjectionEnv(Env* base);

  // --- fault controls -----------------------------------------------------

  /// Every read/write fails while set.
  void SetFailAll(bool fail) { fail_all_.store(fail); }
  /// The next `n`-th read operation fails (1 = the very next one).
  void FailNthRead(uint64_t n) { reads_until_failure_.store(n); }
  /// The next `n`-th write/append fails.
  void FailNthWrite(uint64_t n) { writes_until_failure_.store(n); }
  /// Fail attempts to create new files while set.
  void SetFailFileCreation(bool fail) { fail_creation_.store(fail); }

  uint64_t injected_failures() const { return injected_failures_.load(); }

  // --- Env ----------------------------------------------------------------

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;

 private:
  friend class FaultSequentialFile;
  friend class FaultRandomAccessFile;
  friend class FaultWritableFile;

  /// Returns a non-OK status if a read fault fires now.
  Status MaybeReadFault();
  Status MaybeWriteFault();

  Env* base_;
  std::atomic<bool> fail_all_{false};
  std::atomic<bool> fail_creation_{false};
  std::atomic<uint64_t> reads_until_failure_{0};   // 0 = disarmed
  std::atomic<uint64_t> writes_until_failure_{0};  // 0 = disarmed
  std::atomic<uint64_t> injected_failures_{0};
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_FAULT_INJECTION_ENV_H_
