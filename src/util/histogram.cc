#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace adcache {

const std::vector<uint64_t>& Histogram::BucketLimits() {
  // Geometric-ish bucket upper bounds: 1, 2, 3, 4, 6, 8, 12, 16, ...
  static const std::vector<uint64_t>& limits = *new std::vector<uint64_t>([] {
    std::vector<uint64_t> v;
    uint64_t x = 1;
    while (x < std::numeric_limits<uint64_t>::max() / 3) {
      v.push_back(x);
      v.push_back(x + x / 2 == x ? x + 1 : x + x / 2);
      x *= 2;
    }
    v.push_back(std::numeric_limits<uint64_t>::max());
    return v;
  }());
  return limits;
}

Histogram::Histogram() : buckets_(BucketLimits().size(), 0) { Clear(); }

void Histogram::Clear() {
  num_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  sum_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

size_t Histogram::BucketIndexFor(uint64_t value) const {
  const auto& limits = BucketLimits();
  auto it = std::lower_bound(limits.begin(), limits.end(), value);
  return static_cast<size_t>(it - limits.begin());
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndexFor(value)]++;
  num_++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  num_ += other.num_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); i++) buckets_[i] += other.buckets_[i];
}

double Histogram::Average() const {
  if (num_ == 0) return 0;
  return sum_ / static_cast<double>(num_);
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;
  const auto& limits = BucketLimits();
  double threshold = static_cast<double>(num_) * (p / 100.0);
  double cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Linear interpolation within the bucket.
      double left = (i == 0) ? 0 : static_cast<double>(limits[i - 1]);
      double right = static_cast<double>(limits[i]);
      double bucket_count = static_cast<double>(buckets_[i]);
      double pos =
          bucket_count == 0
              ? 0
              : (threshold - (cumulative - bucket_count)) / bucket_count;
      double r = left + (right - left) * pos;
      return std::clamp(r, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f min=%llu max=%llu p50=%.1f p99=%.1f",
                static_cast<unsigned long long>(num_), Average(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max_), Percentile(50),
                Percentile(99));
  return buf;
}

}  // namespace adcache
