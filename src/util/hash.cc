#include "util/hash.h"

#include <cstring>

namespace adcache {

uint32_t Hash(const char* data, size_t n, uint32_t seed) {
  // MurmurHash-like scheme from leveldb.
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (limit - data >= 4) {
    uint32_t w;
    memcpy(&w, data, sizeof(w));
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[0]));
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  // FNV-1a accumulation followed by an xxhash64-style avalanche.
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace adcache
