#ifndef ADCACHE_UTIL_STATUS_H_
#define ADCACHE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace adcache {

/// Status encodes the outcome of an operation. It is cheaply copyable; an OK
/// status carries no allocation. Mirrors the rocksdb/leveldb idiom so the code
/// base never needs exceptions.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg = Slice()) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(const Slice& msg = Slice()) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(const Slice& msg = Slice()) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(const Slice& msg = Slice()) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(const Slice& msg = Slice()) {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(const Slice& msg = Slice()) {
    return Status(Code::kBusy, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  /// Human-readable representation, e.g. "NotFound: key missing".
  std::string ToString() const;

 private:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
  };

  Status(Code code, const Slice& msg) : code_(code), msg_(msg.ToString()) {}

  Code code_;
  std::string msg_;
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_STATUS_H_
