#include "cache/range_cache.h"

#include <algorithm>
#include <cassert>

#include "util/perf_context.h"

namespace adcache {

namespace {

// Fixed per-entry bookkeeping cost (map node, policy metadata, flags).
constexpr size_t kEntryOverhead = 96;

// Smallest string strictly greater than `key`.
std::string JustAfter(const Slice& key) {
  std::string s = key.ToString();
  s.push_back('\0');
  return s;
}

}  // namespace

RangeCache::RangeCache(size_t capacity_bytes,
                       std::unique_ptr<EvictionPolicy> policy)
    : capacity_(capacity_bytes), policy_(std::move(policy)) {}

size_t RangeCache::ChargeFor(const Slice& key, const Slice& value) const {
  return key.size() + value.size() + kEntryOverhead;
}

bool RangeCache::Get(const Slice& key, std::string* value) {
  ADCACHE_PERF_COUNTER_ADD(range_cache_probe_count, 1);
  std::lock_guard<std::mutex> l(mu_);
  auto it = map_.find(std::string(key.data(), key.size()));
  if (it == map_.end()) {
    misses_.Inc();
    policy_->OnMiss(key.ToString());
    return false;
  }
  *value = it->second.value;
  policy_->OnAccess(it->first);
  hits_.Inc();
  ADCACHE_PERF_COUNTER_ADD(range_cache_hit_count, 1);
  return true;
}

bool RangeCache::GetScan(const Slice& start, size_t n,
                         std::vector<KvPair>* results) {
  results->clear();
  if (n == 0) return true;
  ADCACHE_PERF_COUNTER_ADD(range_cache_probe_count, 1);
  std::lock_guard<std::mutex> l(mu_);
  auto it = map_.lower_bound(start.ToString());
  bool full = false;
  // The first cached entry at/after `start` provably is the first DB result
  // for the seek if either (a) its recorded coverage reaches back to
  // `start`, or (b) the preceding cached entry is chained to it (no DB key
  // exists between them, and `start` falls in that gap).
  bool covered = false;
  if (it != map_.end()) {
    covered = Slice(it->second.covers_from).compare(start) <= 0;
    if (!covered && it != map_.begin() &&
        std::prev(it)->second.adjacent_next) {
      covered = true;
    }
  }
  if (covered) {
    std::vector<const std::string*> touched;
    while (true) {
      results->push_back(KvPair{it->first, it->second.value});
      touched.push_back(&it->first);
      if (results->size() == n) {
        full = true;
        break;
      }
      if (!it->second.adjacent_next) break;
      auto next = std::next(it);
      if (next == map_.end()) break;  // defensive: invariant violation
      it = next;
    }
    if (full) {
      for (const std::string* k : touched) policy_->OnAccess(*k);
    }
  }
  if (!full) {
    results->clear();
    misses_.Inc();
    policy_->OnMiss(start.ToString());
    return false;
  }
  hits_.Inc();
  ADCACHE_PERF_COUNTER_ADD(range_cache_hit_count, 1);
  return true;
}

size_t RangeCache::GetScanPart(const Slice& start, size_t n,
                               std::vector<KvPair>* results) {
  if (n == 0) return 0;
  // No probe PerfContext bump here: the facade counts one probe per logical
  // stitched scan, matching the N=1 accounting.
  std::lock_guard<std::mutex> l(mu_);
  auto it = map_.lower_bound(start.ToString());
  bool covered = false;
  if (it != map_.end()) {
    covered = Slice(it->second.covers_from).compare(start) <= 0;
    if (!covered && it != map_.begin() &&
        std::prev(it)->second.adjacent_next) {
      covered = true;
    }
  }
  size_t served = 0;
  if (covered) {
    while (true) {
      results->push_back(KvPair{it->first, it->second.value});
      policy_->OnAccess(it->first);
      served++;
      if (served == n) break;
      if (!it->second.adjacent_next) break;
      auto next = std::next(it);
      if (next == map_.end()) break;  // defensive: invariant violation
      it = next;
    }
  }
  return served;
}

void RangeCache::RecordStitchedScanMiss(const Slice& start) {
  std::lock_guard<std::mutex> l(mu_);
  misses_.Inc();
  policy_->OnMiss(start.ToString());
}

bool RangeCache::PutPoint(const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> l(mu_);
  std::string k = key.ToString();
  bool has_upper_neighbor = true;
  auto it = map_.find(k);
  if (it != map_.end()) {
    usage_ -= it->second.charge;
    it->second.value = value.ToString();
    it->second.charge = ChargeFor(key, value);
    usage_ += it->second.charge;
    policy_->OnAccess(k);
  } else {
    Entry e;
    e.value = value.ToString();
    e.covers_from = k;
    e.adjacent_next = false;
    e.charge = ChargeFor(key, value);
    auto [pos, inserted] = map_.emplace(std::move(k), std::move(e));
    usage_ += pos->second.charge;
    policy_->OnInsert(pos->first);
    // Defensive coverage repair (no-op while invariants hold): the successor
    // cannot claim to be the first result for seeks at or before this key.
    auto succ = std::next(pos);
    if (succ == map_.end()) {
      has_upper_neighbor = false;
    } else if (Slice(succ->second.covers_from).compare(key) <= 0) {
      succ->second.covers_from = JustAfter(key);
    }
  }
  EvictToFit();
  return has_upper_neighbor;
}

void RangeCache::PutScan(const Slice& start, const std::vector<KvPair>& results,
                         size_t admit_limit) {
  if (results.empty()) return;
  std::lock_guard<std::mutex> l(mu_);
  size_t inserted = 0;
  auto prev_it = map_.end();
  bool first_processed = true;
  for (const KvPair& r : results) {
    auto it = map_.find(r.key);
    if (it == map_.end()) {
      if (inserted >= admit_limit) break;
      policy_->OnMiss(r.key);  // ghost-history learning before re-admission
      Entry e;
      e.value = r.value;
      e.covers_from = r.key;
      e.adjacent_next = false;
      e.charge = ChargeFor(r.key, r.value);
      it = map_.emplace(r.key, std::move(e)).first;
      usage_ += it->second.charge;
      policy_->OnInsert(r.key);
      inserted++;
    } else {
      usage_ -= it->second.charge;
      it->second.value = r.value;
      it->second.charge = ChargeFor(r.key, r.value);
      usage_ += it->second.charge;
      policy_->OnAccess(r.key);
    }
    if (first_processed) {
      if (start.compare(Slice(it->second.covers_from)) < 0) {
        it->second.covers_from = start.ToString();
      }
      first_processed = false;
    }
    if (prev_it != map_.end()) {
      // The scan observed prev and this entry back to back.
      prev_it->second.adjacent_next = true;
    }
    prev_it = it;
  }
  EvictToFit();
}

bool RangeCache::InvalidateWrite(const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> l(mu_);
  std::string k = key.ToString();
  auto it = map_.find(k);
  if (it != map_.end()) {
    // Write-through refresh; recency/frequency state is left untouched.
    usage_ -= it->second.charge;
    it->second.value = value.ToString();
    it->second.charge = ChargeFor(key, value);
    usage_ += it->second.charge;
    EvictToFit();
    return true;
  }
  // A brand-new DB key falsifies adjacency across it and any coverage claim
  // spanning it.
  auto succ = map_.lower_bound(k);
  if (succ != map_.end() &&
      Slice(succ->second.covers_from).compare(key) <= 0) {
    succ->second.covers_from = JustAfter(key);
  }
  if (succ != map_.begin() && !map_.empty()) {
    auto pred = std::prev(succ);
    if (pred->second.adjacent_next) pred->second.adjacent_next = false;
  }
  return succ != map_.end();
}

bool RangeCache::RepairLeadingClaim(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  if (map_.empty()) return false;
  auto it = map_.begin();
  if (Slice(it->second.covers_from).compare(key) <= 0) {
    it->second.covers_from = JustAfter(key);
  }
  return true;
}

void RangeCache::InvalidateDelete(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return;
  // If pred->key->succ were fully chained, pred remains adjacent to succ
  // once the key is deleted from the database.
  if (it != map_.begin()) {
    auto pred = std::prev(it);
    if (pred->second.adjacent_next) {
      pred->second.adjacent_next = it->second.adjacent_next;
    }
  }
  usage_ -= it->second.charge;
  policy_->OnErase(it->first);
  map_.erase(it);
}

void RangeCache::Clear() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [k, e] : map_) policy_->OnErase(k);
  map_.clear();
  usage_ = 0;
}

void RangeCache::RemoveEntry(Map::iterator it) {
  if (it != map_.begin()) {
    auto pred = std::prev(it);
    // Eviction loses the knowledge that pred's successor was cached.
    pred->second.adjacent_next = false;
  }
  usage_ -= it->second.charge;
  map_.erase(it);
}

void RangeCache::EvictToFit() {
  size_t guard = map_.size() + 1;
  while (usage_ > capacity_ && guard-- > 0) {
    std::string victim;
    if (!policy_->Victim(&victim)) break;
    auto it = map_.find(victim);
    if (it == map_.end()) continue;  // policy desync; skip
    RemoveEntry(it);
    evictions_.Inc();
  }
}

void RangeCache::SetCapacity(size_t capacity_bytes) {
  std::lock_guard<std::mutex> l(mu_);
  capacity_ = capacity_bytes;
  EvictToFit();
}

size_t RangeCache::GetCapacity() const {
  std::lock_guard<std::mutex> l(mu_);
  return capacity_;
}

size_t RangeCache::GetUsage() const {
  std::lock_guard<std::mutex> l(mu_);
  return usage_;
}

size_t RangeCache::EntryCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return map_.size();
}

// ---------------------------------------------------------------------------
// ShardedRangeCache
// ---------------------------------------------------------------------------

ShardedRangeCache::ShardedRangeCache(size_t capacity_bytes,
                                     std::vector<std::string> boundaries,
                                     PolicyFactory policy_factory,
                                     uint64_t seed)
    : boundaries_(std::move(boundaries)), capacity_(capacity_bytes) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  size_t num_shards = boundaries_.size() + 1;
  size_t per_shard = (capacity_bytes + num_shards - 1) / num_shards;
  for (size_t i = 0; i < num_shards; i++) {
    shards_.push_back(
        std::make_unique<RangeCache>(per_shard, policy_factory(seed + i)));
  }
}

ShardedRangeCache::ShardedRangeCache(
    size_t capacity_bytes, std::vector<std::string> boundaries,
    std::vector<std::unique_ptr<EvictionPolicy>> policies)
    : boundaries_(std::move(boundaries)), capacity_(capacity_bytes) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  assert(policies.size() == boundaries_.size() + 1);
  size_t num_shards = policies.size();
  size_t per_shard = (capacity_bytes + num_shards - 1) / num_shards;
  for (auto& policy : policies) {
    shards_.push_back(
        std::make_unique<RangeCache>(per_shard, std::move(policy)));
  }
}

size_t ShardedRangeCache::ShardFor(const Slice& key) const {
  // First boundary strictly greater than key determines the shard.
  size_t lo = 0;
  size_t hi = boundaries_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (Slice(boundaries_[mid]).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool ShardedRangeCache::Get(const Slice& key, std::string* value) {
  return shards_[ShardFor(key)]->Get(key, value);
}

bool ShardedRangeCache::GetScan(const Slice& start, size_t n,
                                std::vector<KvPair>* results) {
  if (shards_.size() == 1) return shards_[0]->GetScan(start, n, results);
  // Cached runs are clipped at shard boundaries by PutScan below, so a scan
  // spanning shards is stitched from per-shard parts: after one shard's
  // chain ends, re-seek at the smallest key past the served prefix. The
  // continuation is sound only if the next part's coverage claim reaches
  // back to that point (PutScan records the cross-boundary gap in the
  // continuation segment's covers_from) — otherwise the scan is a miss.
  // Each shard's part is read under that shard's lock only; like every
  // range-cache scan, the result is not snapshot-consistent.
  results->clear();
  if (n == 0) return true;
  ADCACHE_PERF_COUNTER_ADD(range_cache_probe_count, 1);
  std::string cont;
  Slice seek = start;
  size_t shard = ShardFor(start);
  while (results->size() < n) {
    size_t got =
        shards_[shard]->GetScanPart(seek, n - results->size(), results);
    if (got > 0) {
      cont = JustAfter(Slice(results->back().key));
      seek = Slice(cont);
      shard = ShardFor(seek);  // another cached run may chain on in-shard
    } else if (shard + 1 < shards_.size()) {
      // No provable coverage at `seek` in this shard. The run may continue
      // in a later shard whose covers_from claim reaches back across the
      // gap — including across entirely-empty shard ranges — so probe
      // forward with the same seek; the claim check keeps this sound.
      shard++;
    } else {
      // The scan missed as a whole: the shard owning the failing seek
      // records it (with the seek key as the ghost-history signal).
      shards_[ShardFor(seek)]->RecordStitchedScanMiss(seek);
      results->clear();
      return false;
    }
  }
  // One facade-level hit for the logical scan, credited to the shard that
  // owned the original seek, so the aggregate hit rate (and the per-shard
  // h_est behind budget leases) matches the N=1 accounting — not one hit
  // per contributing shard.
  shards_[ShardFor(start)]->RecordStitchedScanHit();
  ADCACHE_PERF_COUNTER_ADD(range_cache_hit_count, 1);
  return true;
}

void ShardedRangeCache::PutPoint(const Slice& key, const Slice& value) {
  size_t shard = ShardFor(key);
  if (!shards_[shard]->PutPoint(key, value)) {
    // Defensive, like the in-shard successor repair: no-op while the
    // write-invalidation invariants hold.
    RepairClaimsAfter(shard, key);
  }
}

void ShardedRangeCache::PutScan(const Slice& start,
                                const std::vector<KvPair>& results,
                                size_t admit_limit) {
  if (results.empty()) return;
  // Split the result run at shard boundaries; each segment becomes an
  // independent scan insert. The first segment keeps the caller's seek key;
  // a continuation segment seeks from just past the previous segment's last
  // key, so its coverage claim records that the scan observed no DB key in
  // the cross-boundary gap — that claim is what lets GetScan stitch the
  // parts back together.
  size_t i = 0;
  bool first_segment = true;
  while (i < results.size() && admit_limit > 0) {
    size_t shard = ShardFor(Slice(results[i].key));
    size_t j = i;
    while (j < results.size() && ShardFor(Slice(results[j].key)) == shard) {
      j++;
    }
    std::vector<KvPair> segment(results.begin() + static_cast<long>(i),
                                results.begin() + static_cast<long>(j));
    std::string cont_seek;
    Slice seek = start;
    if (!first_segment) {
      cont_seek = JustAfter(Slice(results[i - 1].key));
      seek = Slice(cont_seek);
    }
    size_t before = shards_[shard]->EntryCount();
    shards_[shard]->PutScan(seek, segment, admit_limit);
    size_t after = shards_[shard]->EntryCount();
    admit_limit -= std::min(admit_limit, after - std::min(after, before));
    first_segment = false;
    i = j;
  }
}

void ShardedRangeCache::InvalidateWrite(const Slice& key, const Slice& value) {
  size_t shard = ShardFor(key);
  if (!shards_[shard]->InvalidateWrite(key, value)) {
    // The owner shard holds nothing at/after the new key, so a coverage
    // claim spanning it can only be a cross-boundary continuation claim
    // recorded by a stitched PutScan in a later shard's leading entry.
    // Without this repair, a stitched GetScan seeking into the gap would
    // serve the later shard's entry and silently skip the new key.
    RepairClaimsAfter(shard, key);
  }
}

void ShardedRangeCache::RepairClaimsAfter(size_t owner_shard,
                                          const Slice& key) {
  // Stop at the first non-empty shard: a claim held further along would
  // span that shard's smallest cached key — a real DB key — and the write
  // that created that key already broke it.
  for (size_t s = owner_shard + 1; s < shards_.size(); s++) {
    if (shards_[s]->RepairLeadingClaim(key)) return;
  }
}

void ShardedRangeCache::InvalidateDelete(const Slice& key) {
  shards_[ShardFor(key)]->InvalidateDelete(key);
}

void ShardedRangeCache::Clear() {
  for (auto& s : shards_) s->Clear();
}

void ShardedRangeCache::SetCapacity(size_t capacity_bytes) {
  capacity_ = capacity_bytes;
  size_t per_shard = (capacity_bytes + shards_.size() - 1) / shards_.size();
  for (auto& s : shards_) s->SetCapacity(per_shard);
}

void ShardedRangeCache::SetShardCapacities(
    const std::vector<size_t>& capacities) {
  assert(capacities.size() == shards_.size());
  size_t total = 0;
  // Shrink over-budget shards first, then grow the rest, so the summed
  // usage never transiently exceeds the new total.
  for (size_t i = 0; i < shards_.size(); i++) {
    total += capacities[i];
    if (capacities[i] < shards_[i]->GetCapacity()) {
      shards_[i]->SetCapacity(capacities[i]);
    }
  }
  for (size_t i = 0; i < shards_.size(); i++) {
    if (capacities[i] >= shards_[i]->GetCapacity()) {
      shards_[i]->SetCapacity(capacities[i]);
    }
  }
  capacity_ = total;
}

size_t ShardedRangeCache::GetUsage() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->GetUsage();
  return total;
}

uint64_t ShardedRangeCache::hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->hits();
  return total;
}

size_t ShardedRangeCache::EntryCount() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->EntryCount();
  return total;
}

uint64_t ShardedRangeCache::misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->misses();
  return total;
}

uint64_t ShardedRangeCache::evictions() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->evictions();
  return total;
}

}  // namespace adcache
