#ifndef ADCACHE_CACHE_CACHEUS_H_
#define ADCACHE_CACHE_CACHEUS_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/eviction_policy.h"
#include "util/random.h"

namespace adcache {

/// Cacheus (Rodriguez et al., FAST '21): successor to LeCaR that replaces the
/// plain LRU/LFU experts with a scan-resistant LRU (SR-LRU) and a
/// churn-resistant LFU (CR-LFU), and adapts its learning rate online.
///
/// Faithfulness notes (see DESIGN.md): SR-LRU is implemented as an
/// uncapped two-segment list (new entries probe in S, reuse promotes to R,
/// victims drain S before R) rather than Cacheus's fully adaptive split,
/// and the learning rate adapts via a windowed hit-rate gradient.
class CacheusPolicy : public EvictionPolicy {
 public:
  struct Options {
    double initial_learning_rate = 0.45;
    double min_learning_rate = 0.001;
    double max_learning_rate = 1.0;
    /// Requests per learning-rate adaptation window.
    size_t adaptation_window = 512;
    uint64_t seed = 42;
  };

  CacheusPolicy();
  explicit CacheusPolicy(const Options& options);

  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  void OnMiss(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "cacheus"; }

  double weight_srlru() const { return w_srlru_; }
  double learning_rate() const { return learning_rate_; }

 private:
  /// Scan-resistant LRU: new entries start in the probationary "scan"
  /// segment S; a hit promotes to the "reuse" segment R. Victims come from
  /// S first, so a one-pass scan can only displace other scan entries.
  class SrLru {
   public:
    void Insert(const std::string& key, bool reused);
    void Access(const std::string& key);
    void Erase(const std::string& key);
    bool Victim(std::string* key);
    size_t size() const { return map_.size(); }

   private:
    std::list<std::string> s_;  // front = LRU
    std::list<std::string> r_;
    struct Pos {
      bool in_r;
      std::list<std::string>::iterator it;
    };
    std::unordered_map<std::string, Pos> map_;
  };

  struct GhostEntry {
    uint64_t time;
    uint64_t freq;  // frequency at eviction (CR-LFU restoration)
    std::list<std::string>::iterator it;
  };

  class Ghost {
   public:
    void SetCapacity(size_t cap) { capacity_ = cap; }
    void Add(const std::string& key, uint64_t time, uint64_t freq);
    bool Take(const std::string& key, uint64_t* time, uint64_t* freq);
    void Remove(const std::string& key);

   private:
    size_t capacity_ = 1;
    std::list<std::string> fifo_;
    std::unordered_map<std::string, GhostEntry> map_;
  };

  void AdjustWeight(bool srlru_at_fault);
  void MaybeAdaptLearningRate();

  Options options_;
  SrLru srlru_;
  LfuPolicy crlfu_;
  Ghost h_srlru_;
  Ghost h_crlfu_;
  double w_srlru_ = 0.5;
  double learning_rate_;
  uint64_t time_ = 0;
  size_t resident_ = 0;
  // Learning-rate adaptation state.
  uint64_t window_requests_ = 0;
  uint64_t window_hits_ = 0;
  double prev_window_hit_rate_ = 0.0;
  Random rng_;
};

std::unique_ptr<EvictionPolicy> NewCacheusPolicy(uint64_t seed = 42);

}  // namespace adcache

#endif  // ADCACHE_CACHE_CACHEUS_H_
