#ifndef ADCACHE_CACHE_ARC_POLICY_H_
#define ADCACHE_CACHE_ARC_POLICY_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/eviction_policy.h"

namespace adcache {

/// Adaptive Replacement Cache (Megiddo & Modha, FAST '03) as an eviction
/// policy over entry keys. ARC balances a recency list T1 against a
/// frequency list T2, steered by ghost lists B1/B2; AC-Key (ATC '20, the
/// paper's §2.2) uses exactly this scheme to arbitrate its caches.
///
/// The policy tracks logical entry counts: the target `p` is the desired
/// size of T1 in entries.
class ArcPolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  void OnMiss(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "arc"; }

  double target_t1() const { return p_; }
  size_t t1_size() const { return t1_.entries.size(); }
  size_t t2_size() const { return t2_.entries.size(); }

 private:
  struct ListState {
    std::list<std::string> entries;  // front = LRU
    std::unordered_map<std::string, std::list<std::string>::iterator> index;

    bool Contains(const std::string& key) const {
      return index.count(key) > 0;
    }
    void PushMru(const std::string& key) {
      entries.push_back(key);
      index[key] = std::prev(entries.end());
    }
    void Remove(const std::string& key) {
      auto it = index.find(key);
      if (it == index.end()) return;
      entries.erase(it->second);
      index.erase(it);
    }
    bool PopLru(std::string* key) {
      if (entries.empty()) return false;
      *key = entries.front();
      index.erase(entries.front());
      entries.pop_front();
      return true;
    }
  };

  void TrimGhosts();

  ListState t1_;  // resident, seen once
  ListState t2_;  // resident, seen twice+
  ListState b1_;  // ghost of t1
  ListState b2_;  // ghost of t2
  double p_ = 0;  // adaptive target for |T1|
};

std::unique_ptr<EvictionPolicy> NewArcPolicy();

}  // namespace adcache

#endif  // ADCACHE_CACHE_ARC_POLICY_H_
