#ifndef ADCACHE_CACHE_SECONDARY_CACHE_H_
#define ADCACHE_CACHE_SECONDARY_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache {

/// A flash-backed tier sitting below the DRAM block cache. Blocks evicted
/// from DRAM are *offered* for demotion (the cache may reject them via its
/// admission policy); `Table` read misses probe it before touching the
/// SSTable, and hits are promoted back into DRAM.
///
/// Values are opaque byte strings (serialised data blocks). Lookup copies
/// the value out — the secondary tier never hands out references into its
/// own storage, so callers hold nothing that GC has to wait on.
///
/// Threading: all methods are safe for concurrent use from any thread.
/// Counters are monotone and may be read torn relative to each other.
class SecondaryCache {
 public:
  virtual ~SecondaryCache() = default;

  /// Offers an evicted DRAM block for demotion. The cache may decline
  /// (admission gate, capacity 0, duplicate key); declines are counted in
  /// demotion_rejects(). The bytes are copied before returning.
  virtual void Demote(const Slice& key, const Slice& value) = 0;

  /// Probes for `key`; on hit copies the stored bytes into `*value` and
  /// returns true. Every probe — hit or miss — feeds the admission
  /// frequency sketch, so blocks that keep being requested while absent
  /// from DRAM earn their way past the demotion gate.
  virtual bool Lookup(const Slice& key, std::string* value) = 0;

  /// Drops the entry if present (space is reclaimed lazily by GC).
  virtual void Erase(const Slice& key) = 0;

  /// Retargets the byte budget. Shrinking triggers the watermark GC until
  /// usage fits; growing takes effect immediately. Safe to call repeatedly
  /// with small deltas (the RL controller drives this incrementally).
  virtual void SetCapacity(size_t capacity) = 0;
  virtual size_t GetCapacity() const = 0;
  virtual size_t GetUsage() const = 0;

  /// Demotion-admission threshold over TinyLFU normalised frequency in
  /// [0, 1]. <= 0 admits everything ("demote-everything").
  virtual void SetAdmissionThreshold(double threshold) = 0;
  virtual double admission_threshold() const = 0;

  /// DRAM bytes this tier spends on its in-memory index (key -> slab
  /// location map). Under the unified memory wall this is a DRAM consumer
  /// distinct from the flash bytes GetUsage reports; implementations
  /// without an index report 0.
  virtual size_t IndexMemoryUsage() const { return 0; }
  /// Budget for the in-memory index. Implementations shrink it by dropping
  /// the coldest entries (along with their flash bytes); 0 means unbounded.
  /// The default ignores the budget.
  virtual void SetIndexMemoryBudget(size_t bytes) { (void)bytes; }

  /// Installs (or replaces) the sink receiving the flash-read latency of
  /// every sealed-slab lookup, for implementations that measure one (the
  /// default ignores it). Install before traffic — not synchronised against
  /// in-flight lookups.
  virtual void SetReadLatencySink(std::function<void(uint64_t)> sink) {
    (void)sink;
  }

  // Monotone counters (relaxed; see class comment).
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
  virtual uint64_t demotions() const = 0;
  virtual uint64_t demotion_rejects() const = 0;
  virtual uint64_t gc_runs() const = 0;
  virtual uint64_t gc_reclaimed_bytes() const = 0;
};

/// Configuration for the log-structured slab implementation.
struct SlabSecondaryCacheOptions {
  /// Logical byte budget across sealed slab files plus the active slab.
  size_t capacity = 64 << 20;

  /// Fixed slab segment size. Demoted entries are appended to an in-memory
  /// active slab; when full it is sealed to disk in one sequential write.
  /// An entry larger than the slab payload is rejected outright.
  size_t slab_size = 1 << 20;

  /// GC trigger: when usage reaches `gc_high_watermark * capacity` the
  /// quick-clean GC drops cold sealed slabs wholesale until usage falls to
  /// `gc_low_watermark * capacity`. The gap between the high watermark and
  /// 1.0 is the over-provisioning headroom that keeps demotions flowing
  /// while GC catches up.
  double gc_high_watermark = 0.90;
  double gc_low_watermark = 0.70;

  /// If true, entries of a GC-victim slab that were hit since the slab was
  /// sealed are re-appended to the active slab instead of being dropped
  /// with the rest ("hot-entry salvage").
  bool salvage_hot_entries = true;

  /// Admission gate (TinyLFU): a doorkeeper bloom absorbs each key's first
  /// touch; subsequent touches feed a count-min sketch whose normalised
  /// frequency is compared against the threshold at demotion time.
  double admission_threshold = 0.0;
  size_t sketch_width = 1 << 14;
  size_t doorkeeper_bits = 1 << 16;

  /// Invoked with the latency (microseconds, per the cache's Env clock) of
  /// every lookup that reads a sealed slab from storage. Lets the owner
  /// feed a histogram without this layer depending on core::Statistics.
  std::function<void(uint64_t micros)> read_latency_sink;
};

/// Opens (or recovers) a slab cache rooted at `dir` under `env`. Existing
/// slab files are scanned: well-formed ones rebuild the in-memory index so
/// cache contents survive a restart; torn or corrupt ones are deleted
/// wholesale and never served. `env` must outlive the cache.
Status NewSlabSecondaryCache(Env* env, const std::string& dir,
                             const SlabSecondaryCacheOptions& options,
                             std::shared_ptr<SecondaryCache>* result);

}  // namespace adcache

#endif  // ADCACHE_CACHE_SECONDARY_CACHE_H_
