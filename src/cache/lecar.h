#ifndef ADCACHE_CACHE_LECAR_H_
#define ADCACHE_CACHE_LECAR_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/eviction_policy.h"
#include "util/random.h"

namespace adcache {

/// LeCaR (Vietri et al., HotStorage '18): regret-minimising mixture of LRU
/// and LFU. Two ghost histories remember which expert evicted each departed
/// key; when a missed key is found in a history, the responsible expert's
/// weight is multiplicatively decreased with a time-discounted regret, and a
/// weighted coin picks the expert for each eviction.
class LeCaRPolicy : public EvictionPolicy {
 public:
  struct Options {
    double learning_rate = 0.45;
    /// Per-step regret discount base; the effective discount is
    /// discount_base^(1/history_capacity) per LeCaR's reference code.
    double discount_base = 0.005;
    /// Max entries per ghost history. 0 means "track as many as resident".
    size_t history_capacity = 0;
    uint64_t seed = 42;
  };

  LeCaRPolicy();
  explicit LeCaRPolicy(const Options& options);

  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  void OnMiss(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "lecar"; }

  double weight_lru() const { return w_lru_; }
  double weight_lfu() const { return 1.0 - w_lru_; }

 private:
  /// Bounded FIFO ghost list with O(1) membership and eviction timestamps.
  class History {
   public:
    void SetCapacity(size_t cap) { capacity_ = cap; }
    void Add(const std::string& key, uint64_t time);
    /// Removes `key` and returns its eviction time via `*time`.
    bool Take(const std::string& key, uint64_t* time);
    void Remove(const std::string& key);
    size_t size() const { return map_.size(); }

   private:
    size_t capacity_ = 1;
    std::list<std::string> fifo_;
    std::unordered_map<std::string,
                       std::pair<uint64_t, std::list<std::string>::iterator>>
        map_;
  };

  void AdjustWeight(bool lru_at_fault, uint64_t evict_time);
  size_t HistoryCapacity() const;

  Options options_;
  LruPolicy lru_;
  LfuPolicy lfu_;
  History h_lru_;
  History h_lfu_;
  double w_lru_ = 0.5;
  uint64_t time_ = 0;
  size_t resident_ = 0;
  Random rng_;
};

std::unique_ptr<EvictionPolicy> NewLeCaRPolicy(uint64_t seed = 42);

}  // namespace adcache

#endif  // ADCACHE_CACHE_LECAR_H_
