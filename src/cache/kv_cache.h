#ifndef ADCACHE_CACHE_KV_CACHE_H_
#define ADCACHE_CACHE_KV_CACHE_H_

#include <memory>
#include <string>

#include "cache/cache.h"

namespace adcache {

/// Result cache for point lookups only (RocksDB's "row cache" baseline):
/// user key -> value, LRU-evicted, immune to compaction. Range scans bypass
/// it entirely.
class KvCache {
 public:
  explicit KvCache(size_t capacity_bytes);

  KvCache(const KvCache&) = delete;
  KvCache& operator=(const KvCache&) = delete;

  /// Returns true and fills `*value` on hit.
  bool Get(const Slice& key, std::string* value);

  void Put(const Slice& key, const Slice& value);
  void Erase(const Slice& key);

  void SetCapacity(size_t capacity_bytes);
  size_t GetUsage() const { return cache_->GetUsage(); }
  size_t GetCapacity() const { return cache_->GetCapacity(); }
  uint64_t hits() const { return cache_->hits(); }
  uint64_t misses() const { return cache_->misses(); }

 private:
  std::shared_ptr<Cache> cache_;
};

}  // namespace adcache

#endif  // ADCACHE_CACHE_KV_CACHE_H_
