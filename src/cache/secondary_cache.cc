#include "cache/secondary_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sketch/count_min_sketch.h"
#include "sketch/doorkeeper.h"
#include "util/coding.h"
#include "util/hash.h"

namespace adcache {

namespace {

// Slab file layout:
//
//   [magic "ADC2SLAB" : 8][version : fixed32][slab seq : fixed64]   header
//   [crc : fixed32][key_len : fixed32][val_len : fixed32][key][val] entry*
//
// The crc covers everything after itself in the entry (lengths + key +
// value), so a torn tail, a bit flip, or trailing garbage is caught either
// at open (whole slab discarded) or at read time (entry dropped, miss
// returned — corrupt bytes are never served).
constexpr char kSlabMagic[] = "ADC2SLAB";  // 8 chars + NUL; 8 are written
constexpr size_t kSlabMagicSize = 8;
constexpr uint32_t kSlabVersion = 1;
constexpr size_t kSlabHeaderSize = kSlabMagicSize + 4 + 8;
constexpr size_t kEntryHeaderSize = 4 + 4 + 4;
constexpr uint32_t kSlabChecksumSeed = 0xadc2cafeu;
constexpr char kSlabFilePrefix[] = "secondary.slab-";

uint32_t EntryChecksum(const char* payload, size_t n) {
  return Hash(payload, n, kSlabChecksumSeed);
}

/// A sealed, immutable slab file. Lookups pread it outside the cache mutex
/// while holding a shared_ptr, so GC can drop the slab concurrently: the
/// file object (and, once GC has condemned it, the file itself) goes away
/// when the last reader lets go.
struct SealedSlab {
  SealedSlab(Env* env, std::string path,
             std::unique_ptr<RandomAccessFile> file)
      : env(env), path(std::move(path)), file(std::move(file)) {}
  ~SealedSlab() {
    if (remove_on_drop.load(std::memory_order_relaxed)) {
      env->RemoveFile(path);
    }
  }

  Env* env;
  std::string path;
  std::unique_ptr<RandomAccessFile> file;
  std::atomic<bool> remove_on_drop{false};
};

class SlabSecondaryCache : public SecondaryCache {
 public:
  SlabSecondaryCache(Env* env, std::string dir,
                     const SlabSecondaryCacheOptions& options)
      : env_(env),
        dir_(std::move(dir)),
        opts_(options),
        capacity_(options.capacity),
        admission_threshold_(options.admission_threshold),
        sketch_(MakeSketchOptions(options)),
        doorkeeper_(options.doorkeeper_bits) {}

  ~SlabSecondaryCache() override = default;

  /// Scans `dir_` for slab files left by a previous process. Well-formed
  /// slabs rebuild the index (higher slab seq wins duplicate keys); torn or
  /// garbage files are deleted wholesale.
  Status Recover() {
    Status s = env_->CreateDirIfMissing(dir_);
    if (!s.ok()) {
      return s;
    }
    std::vector<std::string> children;
    s = env_->GetChildren(dir_, &children);
    if (!s.ok()) {
      return s;
    }
    std::map<uint64_t, std::string> found;  // seq -> path, ascending
    for (const std::string& name : children) {
      if (name.rfind(kSlabFilePrefix, 0) != 0) {
        continue;
      }
      const std::string suffix = name.substr(strlen(kSlabFilePrefix));
      char* end = nullptr;
      uint64_t seq = std::strtoull(suffix.c_str(), &end, 10);
      const std::string path = dir_ + "/" + name;
      if (end == suffix.c_str() || *end != '\0') {
        env_->RemoveFile(path);  // prefix matched but name is garbage
        continue;
      }
      found[seq] = path;
    }
    std::lock_guard<std::mutex> l(mu_);
    uint64_t max_seq = 0;
    for (const auto& [seq, path] : found) {
      if (!LoadSlabLocked(seq, path)) {
        env_->RemoveFile(path);
      }
      max_seq = std::max(max_seq, seq);
    }
    next_seq_ = max_seq + 1;
    StartActiveSlabLocked();
    MaybeGcLocked();
    return Status::OK();
  }

  void Demote(const Slice& key, const Slice& value) override {
    const size_t record = kEntryHeaderSize + key.size() + value.size();
    if (record + kSlabHeaderSize > opts_.slab_size) {
      demotion_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> l(mu_);
    if (capacity_.load(std::memory_order_relaxed) == 0) {
      demotion_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (index_.find(std::string(key.data(), key.size())) != index_.end()) {
      return;  // already resident; re-demotion is a no-op, not a reject
    }
    // The offer itself counts as a touch: a block that cycles
    // DRAM -> evicted -> re-read -> evicted accumulates frequency and
    // earns admission on a later pass even if it is never probed here.
    TouchLocked(key);
    const double threshold =
        admission_threshold_.load(std::memory_order_relaxed);
    if (threshold > 0.0 && sketch_.NormalizedFrequency(key) < threshold) {
      demotion_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    AppendLocked(key, value);
    demotions_.fetch_add(1, std::memory_order_relaxed);
    MaybeGcLocked();
  }

  bool Lookup(const Slice& key, std::string* value) override {
    std::unique_lock<std::mutex> l(mu_);
    TouchLocked(key);
    auto it = index_.find(std::string(key.data(), key.size()));
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const EntryRef ref = it->second;
    if (ref.slab_seq == active_seq_) {
      value->assign(
          active_buf_.data() + ref.offset + kEntryHeaderSize + ref.key_len,
          ref.val_len);
      it->second.last_access = ++access_clock_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    auto sit = sealed_.find(ref.slab_seq);
    if (sit == sealed_.end()) {
      // The slab was GC'd between index insert and now (shouldn't happen —
      // GC drops index entries with the slab — but stay defensive).
      index_.erase(it);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    std::shared_ptr<SealedSlab> slab = sit->second.file;
    l.unlock();

    const size_t record = kEntryHeaderSize + ref.key_len + ref.val_len;
    std::string scratch(record, '\0');
    Slice result;
    const uint64_t start = env_->clock()->NowMicros();
    Status s = slab->file->Read(ref.offset, record, &result, scratch.data());
    const uint64_t elapsed = env_->clock()->NowMicros() - start;
    if (opts_.read_latency_sink) {
      opts_.read_latency_sink(elapsed);
    }
    const bool valid = s.ok() && ValidRecord(result, ref, key);

    l.lock();
    auto it2 = index_.find(std::string(key.data(), key.size()));
    const bool still_current = it2 != index_.end() &&
                               it2->second.slab_seq == ref.slab_seq &&
                               it2->second.offset == ref.offset;
    if (!valid) {
      // Never serve bytes that fail validation; drop the entry so the next
      // probe is a clean miss.
      if (still_current) {
        index_.erase(it2);
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    value->assign(result.data() + kEntryHeaderSize + ref.key_len,
                  ref.val_len);
    if (still_current) {
      it2->second.last_access = ++access_clock_;
      auto sit2 = sealed_.find(ref.slab_seq);
      if (sit2 != sealed_.end()) {
        sit2->second.last_access = it2->second.last_access;
      }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void Erase(const Slice& key) override {
    std::lock_guard<std::mutex> l(mu_);
    index_.erase(std::string(key.data(), key.size()));
    // Dead bytes stay in their slab until GC reclaims the slab wholesale.
  }

  void SetCapacity(size_t capacity) override {
    std::lock_guard<std::mutex> l(mu_);
    capacity_.store(capacity, std::memory_order_relaxed);
    MaybeGcLocked();
  }

  size_t GetCapacity() const override {
    return capacity_.load(std::memory_order_relaxed);
  }

  size_t IndexMemoryUsage() const override {
    std::lock_guard<std::mutex> l(mu_);
    return index_.size() * kIndexBytesPerEntry;
  }

  void SetIndexMemoryBudget(size_t bytes) override {
    std::lock_guard<std::mutex> l(mu_);
    index_budget_ = bytes;
    if (bytes == 0) return;  // unbounded
    // Shrink by dropping whole cold sealed slabs — index entries only exist
    // per resident record, so the index shrinks with the slab. No hot-entry
    // salvage here: salvage re-inserts index entries, which could leave the
    // loop unable to make progress against a tight budget.
    while (index_.size() * kIndexBytesPerEntry > index_budget_ &&
           !sealed_.empty()) {
      auto victim = sealed_.begin();
      for (auto it = sealed_.begin(); it != sealed_.end(); ++it) {
        if (it->second.last_access < victim->second.last_access) {
          victim = it;
        }
      }
      const uint64_t seq = victim->first;
      SlabInfo info = std::move(victim->second);
      sealed_.erase(victim);
      DropSlabEntriesLocked(seq);
      usage_.fetch_sub(info.bytes, std::memory_order_relaxed);
      gc_reclaimed_.fetch_add(info.bytes, std::memory_order_relaxed);
      gc_runs_.fetch_add(1, std::memory_order_relaxed);
      info.file->remove_on_drop.store(true, std::memory_order_relaxed);
    }
  }

  size_t GetUsage() const override {
    return usage_.load(std::memory_order_relaxed);
  }

  void SetAdmissionThreshold(double threshold) override {
    admission_threshold_.store(threshold, std::memory_order_relaxed);
  }

  double admission_threshold() const override {
    return admission_threshold_.load(std::memory_order_relaxed);
  }

  void SetReadLatencySink(std::function<void(uint64_t)> sink) override {
    std::lock_guard<std::mutex> l(mu_);
    opts_.read_latency_sink = std::move(sink);
  }

  uint64_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const override {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t demotions() const override {
    return demotions_.load(std::memory_order_relaxed);
  }
  uint64_t demotion_rejects() const override {
    return demotion_rejects_.load(std::memory_order_relaxed);
  }
  uint64_t gc_runs() const override {
    return gc_runs_.load(std::memory_order_relaxed);
  }
  uint64_t gc_reclaimed_bytes() const override {
    return gc_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  /// Index entry: where the record lives and when it was last hit.
  /// `last_access == 0` means "never hit since it was (re)appended" — the
  /// salvage test. Offsets are file offsets (the active buffer starts with
  /// the slab header, so active and sealed offsets are interchangeable).
  struct EntryRef {
    uint64_t slab_seq = 0;
    uint32_t offset = 0;
    uint32_t key_len = 0;
    uint32_t val_len = 0;
    uint32_t last_access = 0;
  };

  struct SlabInfo {
    std::shared_ptr<SealedSlab> file;
    size_t bytes = 0;
    uint32_t last_access = 0;  // max over entry hits since sealing
  };

  /// Modeled DRAM cost of one index_ entry: the unordered_map node (key
  /// string with its SSO buffer + EntryRef + bucket/next pointers) rounded
  /// up to a conservative 96 bytes. Keys are 16-byte cache keys, so the
  /// string never heap-allocates and the estimate is stable.
  static constexpr size_t kIndexBytesPerEntry = 96;

  static CountMinSketch::Options MakeSketchOptions(
      const SlabSecondaryCacheOptions& options) {
    CountMinSketch::Options o;
    o.width = options.sketch_width;
    return o;
  }

  std::string SlabPath(uint64_t seq) const {
    return dir_ + "/" + kSlabFilePrefix + std::to_string(seq);
  }

  void TouchLocked(const Slice& key) {
    if (doorkeeper_.InsertIfAbsent(key)) {
      sketch_.Increment(key);
    }
  }

  void StartActiveSlabLocked() {
    active_seq_ = next_seq_++;
    active_buf_.clear();
    active_buf_.reserve(opts_.slab_size);
    active_buf_.append(kSlabMagic, kSlabMagicSize);
    PutFixed32(&active_buf_, kSlabVersion);
    PutFixed64(&active_buf_, active_seq_);
    usage_.fetch_add(kSlabHeaderSize, std::memory_order_relaxed);
  }

  void AppendLocked(const Slice& key, const Slice& value) {
    const size_t record = kEntryHeaderSize + key.size() + value.size();
    if (active_buf_.size() + record > opts_.slab_size) {
      SealActiveLocked();
    }
    const uint32_t offset = static_cast<uint32_t>(active_buf_.size());
    active_buf_.append(4, '\0');  // crc placeholder, patched below
    PutFixed32(&active_buf_, static_cast<uint32_t>(key.size()));
    PutFixed32(&active_buf_, static_cast<uint32_t>(value.size()));
    active_buf_.append(key.data(), key.size());
    active_buf_.append(value.data(), value.size());
    const uint32_t crc =
        EntryChecksum(active_buf_.data() + offset + 4, record - 4);
    EncodeFixed32(&active_buf_[offset], crc);
    EntryRef ref;
    ref.slab_seq = active_seq_;
    ref.offset = offset;
    ref.key_len = static_cast<uint32_t>(key.size());
    ref.val_len = static_cast<uint32_t>(value.size());
    index_[std::string(key.data(), key.size())] = ref;
    usage_.fetch_add(record, std::memory_order_relaxed);
  }

  /// Writes the active slab to disk in one sequential append and reopens it
  /// for reads. On any I/O failure the slab's entries are simply dropped —
  /// this is a cache, losing entries is always safe.
  void SealActiveLocked() {
    if (active_buf_.size() <= kSlabHeaderSize) {
      return;
    }
    const uint64_t seq = active_seq_;
    const std::string path = SlabPath(seq);
    std::unique_ptr<WritableFile> out;
    Status s = env_->NewWritableFile(path, &out);
    if (s.ok()) {
      s = out->Append(active_buf_);
    }
    if (s.ok()) {
      s = out->Flush();
    }
    if (s.ok()) {
      s = out->Close();
    }
    std::unique_ptr<RandomAccessFile> in;
    if (s.ok()) {
      s = env_->NewRandomAccessFile(path, &in);
    }
    if (s.ok()) {
      SlabInfo info;
      info.file = std::make_shared<SealedSlab>(env_, path, std::move(in));
      info.bytes = active_buf_.size();
      sealed_.emplace(seq, std::move(info));
    } else {
      DropSlabEntriesLocked(seq);
      usage_.fetch_sub(active_buf_.size(), std::memory_order_relaxed);
      env_->RemoveFile(path);
    }
    StartActiveSlabLocked();
  }

  void DropSlabEntriesLocked(uint64_t seq) {
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->second.slab_seq == seq) {
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Watermark-triggered quick-clean: while usage exceeds the low
  /// watermark, drop the coldest sealed slab wholesale (optionally
  /// salvaging entries hit since their last append). Terminates because a
  /// salvaged entry's last_access resets to 0, so nothing is salvaged twice
  /// without an intervening hit — and hits can't interleave under mu_.
  void MaybeGcLocked() {
    const size_t cap = capacity_.load(std::memory_order_relaxed);
    const size_t high = static_cast<size_t>(
        static_cast<double>(cap) * opts_.gc_high_watermark);
    if (sealed_.empty() || usage_.load(std::memory_order_relaxed) < high) {
      return;
    }
    gc_runs_.fetch_add(1, std::memory_order_relaxed);
    const size_t low = static_cast<size_t>(
        static_cast<double>(cap) * opts_.gc_low_watermark);
    while (usage_.load(std::memory_order_relaxed) > low && !sealed_.empty()) {
      auto victim = sealed_.begin();
      for (auto it = sealed_.begin(); it != sealed_.end(); ++it) {
        if (it->second.last_access < victim->second.last_access) {
          victim = it;  // coldest slab; ties go to the oldest (map order)
        }
      }
      const uint64_t seq = victim->first;
      SlabInfo info = std::move(victim->second);
      sealed_.erase(victim);

      // Partition the victim's entries: hot ones (hit since append) are
      // re-read and re-appended if salvage is on; the rest die with the
      // slab. The scan is O(index size) — slabs hold a few hundred blocks
      // and GC runs per-slab, so this stays cheap.
      std::vector<std::pair<std::string, EntryRef>> salvage;
      for (auto it = index_.begin(); it != index_.end();) {
        if (it->second.slab_seq != seq) {
          ++it;
          continue;
        }
        if (opts_.salvage_hot_entries && it->second.last_access != 0) {
          salvage.emplace_back(it->first, it->second);
        }
        it = index_.erase(it);
      }
      for (const auto& [key, ref] : salvage) {
        const size_t record = kEntryHeaderSize + ref.key_len + ref.val_len;
        std::string scratch(record, '\0');
        Slice rec;
        Status s = info.file->file->Read(ref.offset, record, &rec,
                                         scratch.data());
        if (!s.ok() || !ValidRecord(rec, ref, Slice(key))) {
          continue;
        }
        AppendLocked(Slice(key),
                     Slice(rec.data() + kEntryHeaderSize + ref.key_len,
                           ref.val_len));
      }
      usage_.fetch_sub(info.bytes, std::memory_order_relaxed);
      gc_reclaimed_.fetch_add(info.bytes, std::memory_order_relaxed);
      info.file->remove_on_drop.store(true, std::memory_order_relaxed);
      // The file itself is unlinked when the last concurrent reader drops
      // its shared_ptr (possibly right here).
    }
  }

  /// Full validation of one entry record against its index metadata.
  static bool ValidRecord(const Slice& record, const EntryRef& ref,
                          const Slice& key) {
    const size_t expected = kEntryHeaderSize + ref.key_len + ref.val_len;
    if (record.size() != expected) {
      return false;
    }
    const uint32_t crc = DecodeFixed32(record.data());
    if (EntryChecksum(record.data() + 4, expected - 4) != crc) {
      return false;
    }
    if (DecodeFixed32(record.data() + 4) != ref.key_len ||
        DecodeFixed32(record.data() + 8) != ref.val_len) {
      return false;
    }
    return Slice(record.data() + kEntryHeaderSize, ref.key_len) == key;
  }

  /// Loads one pre-existing slab file at open. Returns false — and loads
  /// nothing from it — on any malformation: bad header, seq mismatch with
  /// the file name, a failed entry crc, or trailing garbage.
  bool LoadSlabLocked(uint64_t seq, const std::string& path) {
    std::unique_ptr<RandomAccessFile> file;
    if (!env_->NewRandomAccessFile(path, &file).ok()) {
      return false;
    }
    const uint64_t size = file->Size();
    if (size < kSlabHeaderSize || size > opts_.slab_size) {
      return false;
    }
    std::string scratch(size, '\0');
    Slice data;
    if (!file->Read(0, size, &data, scratch.data()).ok() ||
        data.size() != size) {
      return false;
    }
    if (memcmp(data.data(), kSlabMagic, kSlabMagicSize) != 0 ||
        DecodeFixed32(data.data() + kSlabMagicSize) != kSlabVersion ||
        DecodeFixed64(data.data() + kSlabMagicSize + 4) != seq) {
      return false;
    }
    std::vector<std::pair<std::string, EntryRef>> entries;
    size_t off = kSlabHeaderSize;
    while (off < size) {
      if (size - off < kEntryHeaderSize) {
        return false;  // torn tail
      }
      const uint32_t key_len = DecodeFixed32(data.data() + off + 4);
      const uint32_t val_len = DecodeFixed32(data.data() + off + 8);
      const size_t record = kEntryHeaderSize + static_cast<size_t>(key_len) +
                            static_cast<size_t>(val_len);
      if (record > size - off) {
        return false;  // torn tail / corrupt lengths
      }
      const uint32_t crc = DecodeFixed32(data.data() + off);
      if (EntryChecksum(data.data() + off + 4, record - 4) != crc) {
        return false;
      }
      EntryRef ref;
      ref.slab_seq = seq;
      ref.offset = static_cast<uint32_t>(off);
      ref.key_len = key_len;
      ref.val_len = val_len;
      entries.emplace_back(
          std::string(data.data() + off + kEntryHeaderSize, key_len), ref);
      off += record;
    }
    SlabInfo info;
    info.file = std::make_shared<SealedSlab>(env_, path, std::move(file));
    info.bytes = size;
    sealed_.emplace(seq, std::move(info));
    for (auto& [key, ref] : entries) {
      index_[key] = ref;  // caller iterates ascending seq: newest wins
    }
    usage_.fetch_add(size, std::memory_order_relaxed);
    return true;
  }

  Env* const env_;
  const std::string dir_;
  // Immutable after construction except read_latency_sink, which the owner
  // may install post-open (before traffic; see SetReadLatencySink).
  SlabSecondaryCacheOptions opts_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, EntryRef> index_;  // guarded by mu_
  std::map<uint64_t, SlabInfo> sealed_;              // guarded by mu_
  std::string active_buf_;                           // guarded by mu_
  uint64_t active_seq_ = 0;                          // guarded by mu_
  uint64_t next_seq_ = 1;                            // guarded by mu_
  uint32_t access_clock_ = 0;                        // guarded by mu_
  CountMinSketch sketch_;                            // guarded by mu_
  Doorkeeper doorkeeper_;                            // guarded by mu_

  size_t index_budget_ = 0;  // guarded by mu_; 0 = unbounded

  std::atomic<size_t> capacity_;
  std::atomic<size_t> usage_{0};
  std::atomic<double> admission_threshold_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> demotion_rejects_{0};
  std::atomic<uint64_t> gc_runs_{0};
  std::atomic<uint64_t> gc_reclaimed_{0};
};

}  // namespace

Status NewSlabSecondaryCache(Env* env, const std::string& dir,
                             const SlabSecondaryCacheOptions& options,
                             std::shared_ptr<SecondaryCache>* result) {
  auto cache = std::make_shared<SlabSecondaryCache>(env, dir, options);
  Status s = cache->Recover();
  if (!s.ok()) {
    return s;
  }
  *result = std::move(cache);
  return Status::OK();
}

}  // namespace adcache
