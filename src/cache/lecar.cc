#include "cache/lecar.h"

#include <algorithm>
#include <cmath>

namespace adcache {

void LeCaRPolicy::History::Add(const std::string& key, uint64_t time) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    fifo_.erase(it->second.second);
    map_.erase(it);
  }
  while (map_.size() >= std::max<size_t>(1, capacity_)) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
  }
  fifo_.push_back(key);
  map_[key] = {time, std::prev(fifo_.end())};
}

bool LeCaRPolicy::History::Take(const std::string& key, uint64_t* time) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *time = it->second.first;
  fifo_.erase(it->second.second);
  map_.erase(it);
  return true;
}

void LeCaRPolicy::History::Remove(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  fifo_.erase(it->second.second);
  map_.erase(it);
}

LeCaRPolicy::LeCaRPolicy() : LeCaRPolicy(Options()) {}

LeCaRPolicy::LeCaRPolicy(const Options& options)
    : options_(options), rng_(options.seed) {}

size_t LeCaRPolicy::HistoryCapacity() const {
  return options_.history_capacity != 0 ? options_.history_capacity
                                        : std::max<size_t>(1, resident_);
}

void LeCaRPolicy::OnInsert(const std::string& key) {
  time_++;
  resident_++;
  h_lru_.SetCapacity(HistoryCapacity());
  h_lfu_.SetCapacity(HistoryCapacity());
  // A key re-admitted after eviction must not linger in the ghosts.
  h_lru_.Remove(key);
  h_lfu_.Remove(key);
  lru_.OnInsert(key);
  lfu_.OnInsert(key);
}

void LeCaRPolicy::OnAccess(const std::string& key) {
  time_++;
  lru_.OnAccess(key);
  lfu_.OnAccess(key);
}

void LeCaRPolicy::OnErase(const std::string& key) {
  if (resident_ > 0) resident_--;
  lru_.OnErase(key);
  lfu_.OnErase(key);
}

void LeCaRPolicy::AdjustWeight(bool lru_at_fault, uint64_t evict_time) {
  const size_t n = HistoryCapacity();
  const double d = std::pow(options_.discount_base,
                            1.0 / static_cast<double>(std::max<size_t>(1, n)));
  const double age = static_cast<double>(time_ - evict_time);
  const double regret = std::pow(d, age);
  double w_lru = w_lru_;
  double w_lfu = 1.0 - w_lru_;
  if (lru_at_fault) {
    w_lru *= std::exp(-options_.learning_rate * regret);
  } else {
    w_lfu *= std::exp(-options_.learning_rate * regret);
  }
  w_lru_ = w_lru / (w_lru + w_lfu);
  // Keep both experts alive.
  w_lru_ = std::clamp(w_lru_, 0.01, 0.99);
}

void LeCaRPolicy::OnMiss(const std::string& key) {
  time_++;
  uint64_t evict_time = 0;
  if (h_lru_.Take(key, &evict_time)) {
    AdjustWeight(/*lru_at_fault=*/true, evict_time);
  } else if (h_lfu_.Take(key, &evict_time)) {
    AdjustWeight(/*lru_at_fault=*/false, evict_time);
  }
}

bool LeCaRPolicy::Victim(std::string* key) {
  const bool use_lru = rng_.NextDouble() < w_lru_;
  std::string victim;
  bool ok = use_lru ? lru_.Victim(&victim) : lfu_.Victim(&victim);
  if (!ok) {
    // The chosen expert is empty (shouldn't happen when both track the same
    // resident set, but be defensive): try the other.
    ok = use_lru ? lfu_.Victim(&victim) : lru_.Victim(&victim);
    if (!ok) return false;
  }
  // Keep the experts consistent: remove the victim from the other structure.
  lru_.OnErase(victim);
  lfu_.OnErase(victim);
  if (resident_ > 0) resident_--;
  (use_lru ? h_lru_ : h_lfu_).Add(victim, time_);
  *key = victim;
  return true;
}

std::unique_ptr<EvictionPolicy> NewLeCaRPolicy(uint64_t seed) {
  LeCaRPolicy::Options opts;
  opts.seed = seed;
  return std::make_unique<LeCaRPolicy>(opts);
}

}  // namespace adcache
