#include "cache/kv_cache.h"

namespace adcache {

namespace {

void DeleteString(const Slice& /*key*/, void* value) {
  delete static_cast<std::string*>(value);
}

// Fixed per-entry bookkeeping cost charged on top of key/value bytes.
constexpr size_t kEntryOverhead = 64;

}  // namespace

KvCache::KvCache(size_t capacity_bytes)
    : cache_(NewLRUCache(capacity_bytes)) {}

bool KvCache::Get(const Slice& key, std::string* value) {
  Cache::Handle* h = cache_->Lookup(key);
  if (h == nullptr) return false;
  *value = *static_cast<std::string*>(cache_->Value(h));
  cache_->Release(h);
  return true;
}

void KvCache::Put(const Slice& key, const Slice& value) {
  auto* stored = new std::string(value.ToString());
  size_t charge = key.size() + value.size() + kEntryOverhead;
  Cache::Handle* h = cache_->Insert(key, stored, charge, &DeleteString);
  if (h != nullptr) cache_->Release(h);
}

void KvCache::Erase(const Slice& key) { cache_->Erase(key); }

void KvCache::SetCapacity(size_t capacity_bytes) {
  cache_->SetCapacity(capacity_bytes);
}

}  // namespace adcache
