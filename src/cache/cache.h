#ifndef ADCACHE_CACHE_CACHE_H_
#define ADCACHE_CACHE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/slice.h"

namespace adcache {

/// Generic byte-budgeted cache in the style of rocksdb::Cache. Entries are
/// reference-counted: Lookup/Insert return a Handle that pins the entry until
/// Release. The block cache is an instance of this interface.
class Cache {
 public:
  /// Opaque pinned-entry token.
  struct Handle {};

  using Deleter = void (*)(const Slice& key, void* value);

  /// Observes entries the cache evicts to make room (capacity pressure from
  /// Insert/Release/SetCapacity) just before their deleter runs. NOT fired
  /// for explicit Erase, Prune, or destruction — those are invalidations,
  /// not demotion candidates. The entry is unreferenced and exclusively
  /// owned while the callback runs, so `value` is safe to read but must not
  /// be retained past the call. Feeds the secondary-cache demotion hook.
  using EvictionCallback =
      std::function<void(const Slice& key, void* value, size_t charge)>;

  virtual ~Cache() = default;

  /// Inserts a mapping key->value charged `charge` bytes against the budget.
  /// Returns a pinned handle (caller must Release), or nullptr if the entry
  /// is larger than the capacity.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         Deleter deleter) = 0;

  /// Returns a pinned handle for `key` or nullptr.
  virtual Handle* Lookup(const Slice& key) = 0;

  /// Batched lookup: sets `handles[i]` to a pinned handle for `keys[i]` or
  /// nullptr; each non-null handle needs its own Release. The base version
  /// is a plain Lookup loop; sharded implementations override it to take
  /// each shard's lock once per batch instead of once per key.
  virtual void MultiLookup(size_t n, const Slice* keys, Handle** handles) {
    for (size_t i = 0; i < n; i++) handles[i] = Lookup(keys[i]);
  }

  /// Batched release: unpins every non-null handle in `handles`. The base
  /// version is a plain Release loop; sharded implementations override it
  /// to take each shard's lock once per batch instead of once per handle.
  virtual void MultiRelease(size_t n, Handle* const* handles) {
    for (size_t i = 0; i < n; i++) {
      if (handles[i] != nullptr) Release(handles[i]);
    }
  }

  /// Takes an additional pin on an already-pinned handle and returns it
  /// (batched reads hand out several values pointing into one block, each
  /// with an independent lifetime). Every pin needs its own Release.
  virtual Handle* Ref(Handle* handle) = 0;

  /// Membership probe that does NOT count as a hit/miss and does not touch
  /// recency state (used by background machinery such as post-compaction
  /// prefetching). Advisory: implementations may report a false negative
  /// rather than wait on contended internal state, so callers must treat
  /// "false" as "probably not cached".
  virtual bool Contains(const Slice& key) const = 0;

  /// Unpins a handle returned by Insert/Lookup.
  virtual void Release(Handle* handle) = 0;

  virtual void* Value(Handle* handle) = 0;

  /// Drops the entry (it is freed once all handles are released).
  virtual void Erase(const Slice& key) = 0;

  /// Retargets the byte budget; shrinking evicts immediately.
  virtual void SetCapacity(size_t capacity) = 0;
  virtual size_t GetCapacity() const = 0;

  /// Bytes currently charged (including pinned entries).
  virtual size_t GetUsage() const = 0;

  /// Drops every unpinned entry.
  virtual void Prune() = 0;

  /// Installs the eviction observer (see EvictionCallback). Must be set
  /// before the cache sees traffic — installation is not synchronised with
  /// concurrent operations. Pass an empty function to clear. The default
  /// implementation ignores the callback (cache impls without demotion
  /// support).
  virtual void SetEvictionCallback(EvictionCallback callback) {
    (void)callback;
  }

  /// Fraction of fixed table slots occupied, for slot-table implementations
  /// (ClockCache); 0 for node-based caches (LRU). Feeds the
  /// `block_cache_slot_occupancy` gauge.
  virtual double slot_occupancy() const { return 0.0; }

  // Hit/miss telemetry (monotonic).
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
};

/// Which block-cache implementation a store should construct (the Cache
/// interface is shared, so everything downstream of construction is
/// impl-agnostic).
enum class BlockCacheImpl {
  kLRU,    // mutex-per-shard LRU (ShardedLRUCache)
  kClock,  // lock-free CLOCK slot table (ClockCache)
};

/// Reads ADCACHE_BLOCK_CACHE_IMPL ("lru" | "clock"; anything else, or
/// unset, means kLRU). Lets CI rerun the whole suite against either backend
/// without code changes (scripts/check.sh --cache-impl=clock).
BlockCacheImpl DefaultBlockCacheImpl();

/// Creates a sharded LRU cache. `num_shard_bits < 0` picks a default based on
/// capacity; 0 gives a single shard.
std::shared_ptr<Cache> NewLRUCache(size_t capacity, int num_shard_bits = -1);

/// Creates a lock-free CLOCK cache (see cache/clock_cache.h). The slot
/// table is sized from max(capacity, table_capacity_hint) /
/// estimated_entry_charge and never resizes; pass the largest capacity
/// SetCapacity may later be given as the hint (e.g. AdCache's whole cache
/// budget, of which the block cache's share varies at runtime).
std::shared_ptr<Cache> NewClockCache(size_t capacity,
                                     size_t estimated_entry_charge = 4160,
                                     size_t table_capacity_hint = 0);

/// Creates the block cache for `impl` at `capacity` (LRU: default sharding;
/// Clock: default 4 KB-block entry estimate with `table_capacity_hint`).
std::shared_ptr<Cache> NewBlockCache(BlockCacheImpl impl, size_t capacity,
                                     size_t table_capacity_hint = 0);

}  // namespace adcache

#endif  // ADCACHE_CACHE_CACHE_H_
