#include "cache/lru_cache.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "util/hash.h"
#include "util/inline_buffer.h"
#include "util/perf_context.h"

namespace adcache {

namespace cache_internal {

LRUCacheShard::LRUCacheShard() {
  lru_.next = &lru_;
  lru_.prev = &lru_;
}

LRUCacheShard::~LRUCacheShard() {
  // All handles must be released by now; drop everything resident.
  for (auto& [key, e] : table_) {
    assert(e->refs == 1);  // only the cache's own reference
    e->in_cache = false;
    if (e->deleter != nullptr) e->deleter(Slice(e->key), e->value);
    delete e;
  }
}

void LRUCacheShard::LRU_Remove(LRUHandle* e) {
  e->next->prev = e->prev;
  e->prev->next = e->next;
  e->next = e->prev = nullptr;
}

void LRUCacheShard::LRU_Append(LRUHandle* e) {
  // Insert at MRU position (just before the dummy head).
  e->next = &lru_;
  e->prev = lru_.prev;
  e->prev->next = e;
  e->next->prev = e;
}

void LRUCacheShard::Unref(LRUHandle* e) {
  assert(e->refs > 0);
  e->refs--;
  if (e->refs == 0) {
    if (e->deleter != nullptr) e->deleter(Slice(e->key), e->value);
    delete e;
  } else if (e->in_cache && e->refs == 1) {
    // No external pins remain: entry becomes evictable.
    LRU_Append(e);
  }
}

void LRUCacheShard::FinishErase(LRUHandle* e) {
  assert(e->in_cache);
  e->in_cache = false;
  usage_ -= e->charge;
  if (e->next != nullptr) LRU_Remove(e);
  Unref(e);
}

void LRUCacheShard::EvictToFit(std::vector<LRUHandle*>* evicted) {
  while (usage_ > capacity_ && lru_.next != &lru_) {
    LRUHandle* old = lru_.next;
    assert(old->refs == 1 && old->in_cache);  // LRU residents are unpinned
    table_.erase(old->key);
    LRU_Remove(old);
    old->in_cache = false;
    usage_ -= old->charge;
    evicted->push_back(old);
  }
}

void LRUCacheShard::FinishEvictionsUnlocked(
    const std::vector<LRUHandle*>& evicted) {
  for (LRUHandle* e : evicted) {
    if (eviction_cb_ != nullptr && *eviction_cb_) {
      (*eviction_cb_)(Slice(e->key), e->value, e->charge);
    }
    if (e->deleter != nullptr) e->deleter(Slice(e->key), e->value);
    delete e;
  }
}

Cache::Handle* LRUCacheShard::Insert(const Slice& key, void* value,
                                     size_t charge, Cache::Deleter deleter) {
  std::vector<LRUHandle*> evicted;
  LRUHandle* e;
  {
    std::lock_guard<std::mutex> l(mu_);
    e = new LRUHandle();
    e->value = value;
    e->deleter = deleter;
    e->charge = charge;
    e->key = key.ToString();
    e->in_cache = true;
    e->refs = 2;  // cache's reference + returned handle
    e->next = e->prev = nullptr;

    auto it = table_.find(e->key);
    if (it != table_.end()) {
      FinishErase(it->second);
      it->second = e;
    } else {
      table_.emplace(e->key, e);
    }
    usage_ += charge;
    EvictToFit(&evicted);
  }
  FinishEvictionsUnlocked(evicted);
  return reinterpret_cast<Cache::Handle*>(e);
}

namespace {
inline std::string_view View(const Slice& s) {
  return std::string_view(s.data(), s.size());
}
}  // namespace

Cache::Handle* LRUCacheShard::Lookup(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(View(key));
  if (it == table_.end()) return nullptr;
  LRUHandle* e = it->second;
  if (e->refs == 1) LRU_Remove(e);  // pinned entries leave the LRU list
  e->refs++;
  return reinterpret_cast<Cache::Handle*>(e);
}

size_t LRUCacheShard::LookupBatch(const Slice* keys, const uint32_t* indices,
                                  size_t m, Cache::Handle** handles) {
  std::lock_guard<std::mutex> l(mu_);
  size_t hits = 0;
  for (size_t j = 0; j < m; j++) {
    size_t i = indices != nullptr ? indices[j] : j;
    auto it = table_.find(View(keys[i]));
    if (it == table_.end()) {
      handles[i] = nullptr;
      continue;
    }
    LRUHandle* e = it->second;
    if (e->refs == 1) LRU_Remove(e);  // pinned entries leave the LRU list
    e->refs++;
    handles[i] = reinterpret_cast<Cache::Handle*>(e);
    hits++;
  }
  return hits;
}

void LRUCacheShard::ReleaseBatch(Cache::Handle* const* handles,
                                 const uint32_t* indices, size_t m) {
  std::vector<LRUHandle*> evicted;
  {
    std::lock_guard<std::mutex> l(mu_);
    for (size_t j = 0; j < m; j++) {
      size_t i = indices != nullptr ? indices[j] : j;
      Unref(reinterpret_cast<LRUHandle*>(handles[i]));
    }
    EvictToFit(&evicted);
  }
  FinishEvictionsUnlocked(evicted);
}

void LRUCacheShard::Ref(Cache::Handle* handle) {
  std::lock_guard<std::mutex> l(mu_);
  LRUHandle* e = reinterpret_cast<LRUHandle*>(handle);
  assert(e->refs >= 2);  // caller's pin keeps the entry off the LRU list
  e->refs++;
}

bool LRUCacheShard::Contains(const Slice& key) const {
  // Advisory probe (see Cache::Contains): never wait behind a foreground
  // Lookup/Insert holding the shard mutex — a contended shard answers
  // "probably not cached", which background prefetch treats the same as a
  // miss. This keeps the probe off the shard's critical path entirely.
  std::unique_lock<std::mutex> l(mu_, std::try_to_lock);
  if (!l.owns_lock()) return false;
  return table_.find(View(key)) != table_.end();
}

void LRUCacheShard::Release(Cache::Handle* handle) {
  std::vector<LRUHandle*> evicted;
  {
    std::lock_guard<std::mutex> l(mu_);
    LRUHandle* e = reinterpret_cast<LRUHandle*>(handle);
    Unref(e);
    // Releasing a pin can push usage handling: if over capacity, evict.
    EvictToFit(&evicted);
  }
  FinishEvictionsUnlocked(evicted);
}

void LRUCacheShard::Erase(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(View(key));
  if (it != table_.end()) {
    LRUHandle* e = it->second;
    table_.erase(it);
    FinishErase(e);
  }
}

void LRUCacheShard::SetCapacity(size_t capacity) {
  std::vector<LRUHandle*> evicted;
  {
    std::lock_guard<std::mutex> l(mu_);
    capacity_ = capacity;
    EvictToFit(&evicted);
  }
  FinishEvictionsUnlocked(evicted);
}

size_t LRUCacheShard::GetCapacity() const {
  std::lock_guard<std::mutex> l(mu_);
  return capacity_;
}

size_t LRUCacheShard::GetUsage() const {
  std::lock_guard<std::mutex> l(mu_);
  return usage_;
}

void LRUCacheShard::Prune() {
  std::lock_guard<std::mutex> l(mu_);
  while (lru_.next != &lru_) {
    LRUHandle* old = lru_.next;
    table_.erase(old->key);
    FinishErase(old);
  }
}

}  // namespace cache_internal

namespace {

int DefaultShardBits(size_t capacity) {
  // Roughly one shard per 512 KB, capped at 16 shards for test determinism.
  int bits = 0;
  size_t per_shard = 512 * 1024;
  while ((capacity >> bits) > per_shard && bits < 4) bits++;
  return bits;
}

}  // namespace

ShardedLRUCache::ShardedLRUCache(size_t capacity, int num_shard_bits) {
  if (num_shard_bits < 0) num_shard_bits = DefaultShardBits(capacity);
  if (num_shard_bits > 4) num_shard_bits = 4;  // batch paths assume <= 16
  size_t num_shards = size_t{1} << num_shard_bits;
  shards_ = std::vector<cache_internal::LRUCacheShard>(num_shards);
  shard_mask_ = static_cast<uint32_t>(num_shards - 1);
  SetCapacity(capacity);
}

cache_internal::LRUCacheShard& ShardedLRUCache::ShardFor(const Slice& key) {
  uint32_t h = HashSlice(key);
  return shards_[h & shard_mask_];
}

Cache::Handle* ShardedLRUCache::Insert(const Slice& key, void* value,
                                       size_t charge, Deleter deleter) {
  return ShardFor(key).Insert(key, value, charge, deleter);
}

Cache::Handle* ShardedLRUCache::Lookup(const Slice& key) {
  Cache::Handle* h = ShardFor(key).Lookup(key);
  if (h != nullptr) {
    hits_.Inc();
  } else {
    misses_.Inc();
  }
  return h;
}

void ShardedLRUCache::MultiLookup(size_t n, const Slice* keys,
                                  Handle** handles) {
  if (n == 0) return;
  size_t hits = 0;
  if (shard_mask_ == 0) {
    hits = shards_[0].LookupBatch(keys, nullptr, n, handles);
  } else {
    // Bucket keys by shard so each shard's mutex is taken at most once per
    // batch: a counting sort over the (<= 16) shards groups the indices in
    // one pass instead of rescanning the batch per shard.
    util::InlineBuffer<uint32_t, 128> shard_of(n);
    uint32_t count[17] = {0};  // count[s + 1]: keys bound for shard s
    for (size_t i = 0; i < n; i++) {
      shard_of[i] = HashSlice(keys[i]) & shard_mask_;
      count[shard_of[i] + 1]++;
    }
    for (uint32_t s = 0; s <= shard_mask_; s++) count[s + 1] += count[s];
    util::InlineBuffer<uint32_t, 128> indices(n);
    {
      uint32_t fill[17];
      std::memcpy(fill, count, sizeof(fill));
      for (size_t i = 0; i < n; i++) {
        indices[fill[shard_of[i]]++] = static_cast<uint32_t>(i);
      }
    }
    for (uint32_t s = 0; s <= shard_mask_; s++) {
      size_t m = count[s + 1] - count[s];
      if (m == 0) continue;
      hits += shards_[s].LookupBatch(keys, indices.data() + count[s], m,
                                     handles);
    }
  }
  // One telemetry add per counter for the whole batch.
  if (hits > 0) hits_.Add(hits);
  if (n - hits > 0) misses_.Add(n - hits);
}

void ShardedLRUCache::MultiRelease(size_t n, Handle* const* handles) {
  if (n == 0) return;
  // Bucket by shard, mirroring MultiLookup: one lock (and one eviction
  // check) per touched shard instead of one hash + lock per handle.
  util::InlineBuffer<uint32_t, 128> shard_of(n);
  uint32_t count[17] = {0};
  for (size_t i = 0; i < n; i++) {
    if (handles[i] == nullptr) {
      shard_of[i] = UINT32_MAX;
      continue;
    }
    auto* e = reinterpret_cast<cache_internal::LRUHandle*>(handles[i]);
    shard_of[i] = HashSlice(Slice(e->key)) & shard_mask_;
    count[shard_of[i] + 1]++;
  }
  for (uint32_t s = 0; s <= shard_mask_; s++) count[s + 1] += count[s];
  util::InlineBuffer<uint32_t, 128> indices(n);
  {
    uint32_t fill[17];
    std::memcpy(fill, count, sizeof(fill));
    for (size_t i = 0; i < n; i++) {
      if (shard_of[i] == UINT32_MAX) continue;
      indices[fill[shard_of[i]]++] = static_cast<uint32_t>(i);
    }
  }
  for (uint32_t s = 0; s <= shard_mask_; s++) {
    size_t m = count[s + 1] - count[s];
    if (m == 0) continue;
    shards_[s].ReleaseBatch(handles, indices.data() + count[s], m);
  }
}

Cache::Handle* ShardedLRUCache::Ref(Handle* handle) {
  auto* e = reinterpret_cast<cache_internal::LRUHandle*>(handle);
  ShardFor(Slice(e->key)).Ref(handle);
  return handle;
}

bool ShardedLRUCache::Contains(const Slice& key) const {
  ADCACHE_PERF_COUNTER_ADD(block_cache_contains_count, 1);
  uint32_t h = HashSlice(key);
  return shards_[h & shard_mask_].Contains(key);
}

void ShardedLRUCache::Release(Handle* handle) {
  auto* e = reinterpret_cast<cache_internal::LRUHandle*>(handle);
  ShardFor(Slice(e->key)).Release(handle);
}

void* ShardedLRUCache::Value(Handle* handle) {
  return reinterpret_cast<cache_internal::LRUHandle*>(handle)->value;
}

void ShardedLRUCache::Erase(const Slice& key) { ShardFor(key).Erase(key); }

void ShardedLRUCache::SetCapacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
  for (auto& s : shards_) s.SetCapacity(per_shard);
}

size_t ShardedLRUCache::GetCapacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

size_t ShardedLRUCache::GetUsage() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s.GetUsage();
  return total;
}

void ShardedLRUCache::Prune() {
  for (auto& s : shards_) s.Prune();
}

void ShardedLRUCache::SetEvictionCallback(EvictionCallback callback) {
  eviction_cb_ = std::move(callback);
  const Cache::EvictionCallback* cb = eviction_cb_ ? &eviction_cb_ : nullptr;
  for (auto& s : shards_) s.SetEvictionCallback(cb);
}

uint64_t ShardedLRUCache::hits() const { return hits_.Load(); }

uint64_t ShardedLRUCache::misses() const { return misses_.Load(); }

std::shared_ptr<Cache> NewLRUCache(size_t capacity, int num_shard_bits) {
  return std::make_shared<ShardedLRUCache>(capacity, num_shard_bits);
}

}  // namespace adcache
