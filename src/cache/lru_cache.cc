#include "cache/lru_cache.h"

#include <cassert>
#include <vector>

#include "util/hash.h"

namespace adcache {

namespace cache_internal {

LRUCacheShard::LRUCacheShard() {
  lru_.next = &lru_;
  lru_.prev = &lru_;
}

LRUCacheShard::~LRUCacheShard() {
  // All handles must be released by now; drop everything resident.
  for (auto& [key, e] : table_) {
    assert(e->refs == 1);  // only the cache's own reference
    e->in_cache = false;
    if (e->deleter != nullptr) e->deleter(Slice(e->key), e->value);
    delete e;
  }
}

void LRUCacheShard::LRU_Remove(LRUHandle* e) {
  e->next->prev = e->prev;
  e->prev->next = e->next;
  e->next = e->prev = nullptr;
}

void LRUCacheShard::LRU_Append(LRUHandle* e) {
  // Insert at MRU position (just before the dummy head).
  e->next = &lru_;
  e->prev = lru_.prev;
  e->prev->next = e;
  e->next->prev = e;
}

void LRUCacheShard::Unref(LRUHandle* e) {
  assert(e->refs > 0);
  e->refs--;
  if (e->refs == 0) {
    if (e->deleter != nullptr) e->deleter(Slice(e->key), e->value);
    delete e;
  } else if (e->in_cache && e->refs == 1) {
    // No external pins remain: entry becomes evictable.
    LRU_Append(e);
  }
}

void LRUCacheShard::FinishErase(LRUHandle* e) {
  assert(e->in_cache);
  e->in_cache = false;
  usage_ -= e->charge;
  if (e->next != nullptr) LRU_Remove(e);
  Unref(e);
}

void LRUCacheShard::EvictToFit() {
  while (usage_ > capacity_ && lru_.next != &lru_) {
    LRUHandle* old = lru_.next;
    table_.erase(old->key);
    FinishErase(old);
  }
}

Cache::Handle* LRUCacheShard::Insert(const Slice& key, void* value,
                                     size_t charge, Cache::Deleter deleter) {
  std::lock_guard<std::mutex> l(mu_);
  auto* e = new LRUHandle();
  e->value = value;
  e->deleter = deleter;
  e->charge = charge;
  e->key = key.ToString();
  e->in_cache = true;
  e->refs = 2;  // cache's reference + returned handle
  e->next = e->prev = nullptr;

  auto it = table_.find(e->key);
  if (it != table_.end()) {
    FinishErase(it->second);
    it->second = e;
  } else {
    table_.emplace(e->key, e);
  }
  usage_ += charge;
  EvictToFit();
  return reinterpret_cast<Cache::Handle*>(e);
}

Cache::Handle* LRUCacheShard::Lookup(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(std::string(key.data(), key.size()));
  if (it == table_.end()) return nullptr;
  LRUHandle* e = it->second;
  if (e->refs == 1) LRU_Remove(e);  // pinned entries leave the LRU list
  e->refs++;
  return reinterpret_cast<Cache::Handle*>(e);
}

bool LRUCacheShard::Contains(const Slice& key) const {
  std::lock_guard<std::mutex> l(mu_);
  return table_.count(std::string(key.data(), key.size())) > 0;
}

void LRUCacheShard::Release(Cache::Handle* handle) {
  std::lock_guard<std::mutex> l(mu_);
  LRUHandle* e = reinterpret_cast<LRUHandle*>(handle);
  Unref(e);
  // Releasing a pin can push usage handling: if over capacity, evict.
  EvictToFit();
}

void LRUCacheShard::Erase(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(std::string(key.data(), key.size()));
  if (it != table_.end()) {
    LRUHandle* e = it->second;
    table_.erase(it);
    FinishErase(e);
  }
}

void LRUCacheShard::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> l(mu_);
  capacity_ = capacity;
  EvictToFit();
}

size_t LRUCacheShard::GetCapacity() const {
  std::lock_guard<std::mutex> l(mu_);
  return capacity_;
}

size_t LRUCacheShard::GetUsage() const {
  std::lock_guard<std::mutex> l(mu_);
  return usage_;
}

void LRUCacheShard::Prune() {
  std::lock_guard<std::mutex> l(mu_);
  while (lru_.next != &lru_) {
    LRUHandle* old = lru_.next;
    table_.erase(old->key);
    FinishErase(old);
  }
}

}  // namespace cache_internal

namespace {

int DefaultShardBits(size_t capacity) {
  // Roughly one shard per 512 KB, capped at 16 shards for test determinism.
  int bits = 0;
  size_t per_shard = 512 * 1024;
  while ((capacity >> bits) > per_shard && bits < 4) bits++;
  return bits;
}

}  // namespace

ShardedLRUCache::ShardedLRUCache(size_t capacity, int num_shard_bits) {
  if (num_shard_bits < 0) num_shard_bits = DefaultShardBits(capacity);
  size_t num_shards = size_t{1} << num_shard_bits;
  shards_ = std::vector<cache_internal::LRUCacheShard>(num_shards);
  shard_mask_ = static_cast<uint32_t>(num_shards - 1);
  SetCapacity(capacity);
}

cache_internal::LRUCacheShard& ShardedLRUCache::ShardFor(const Slice& key) {
  uint32_t h = HashSlice(key);
  return shards_[h & shard_mask_];
}

Cache::Handle* ShardedLRUCache::Insert(const Slice& key, void* value,
                                       size_t charge, Deleter deleter) {
  return ShardFor(key).Insert(key, value, charge, deleter);
}

Cache::Handle* ShardedLRUCache::Lookup(const Slice& key) {
  Cache::Handle* h = ShardFor(key).Lookup(key);
  if (h != nullptr) {
    hits_.Inc();
  } else {
    misses_.Inc();
  }
  return h;
}

bool ShardedLRUCache::Contains(const Slice& key) const {
  uint32_t h = HashSlice(key);
  return shards_[h & shard_mask_].Contains(key);
}

void ShardedLRUCache::Release(Handle* handle) {
  auto* e = reinterpret_cast<cache_internal::LRUHandle*>(handle);
  ShardFor(Slice(e->key)).Release(handle);
}

void* ShardedLRUCache::Value(Handle* handle) {
  return reinterpret_cast<cache_internal::LRUHandle*>(handle)->value;
}

void ShardedLRUCache::Erase(const Slice& key) { ShardFor(key).Erase(key); }

void ShardedLRUCache::SetCapacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
  for (auto& s : shards_) s.SetCapacity(per_shard);
}

size_t ShardedLRUCache::GetCapacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

size_t ShardedLRUCache::GetUsage() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s.GetUsage();
  return total;
}

void ShardedLRUCache::Prune() {
  for (auto& s : shards_) s.Prune();
}

uint64_t ShardedLRUCache::hits() const { return hits_.Load(); }

uint64_t ShardedLRUCache::misses() const { return misses_.Load(); }

std::shared_ptr<Cache> NewLRUCache(size_t capacity, int num_shard_bits) {
  return std::make_shared<ShardedLRUCache>(capacity, num_shard_bits);
}

}  // namespace adcache
