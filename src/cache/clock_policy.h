#ifndef ADCACHE_CACHE_CLOCK_POLICY_H_
#define ADCACHE_CACHE_CLOCK_POLICY_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/eviction_policy.h"

namespace adcache {

/// Second-chance CLOCK replacement (the paper notes block caches are
/// "typically managed with LRU or CLOCK-based eviction policies", §2.2).
/// Entries sit on a circular list with a reference bit; the hand sweeps,
/// clearing bits, and evicts the first unreferenced entry it meets.
class ClockPolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "clock"; }

  size_t size() const { return map_.size(); }

 private:
  struct Entry {
    std::string key;
    bool referenced;
  };
  using Ring = std::list<Entry>;

  Ring ring_;
  Ring::iterator hand_ = ring_.end();
  std::unordered_map<std::string, Ring::iterator> map_;
};

std::unique_ptr<EvictionPolicy> NewClockPolicy();

}  // namespace adcache

#endif  // ADCACHE_CACHE_CLOCK_POLICY_H_
