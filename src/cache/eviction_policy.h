#ifndef ADCACHE_CACHE_EVICTION_POLICY_H_
#define ADCACHE_CACHE_EVICTION_POLICY_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace adcache {

/// Pluggable replacement policy for entry-granular caches (the range cache).
/// The cache informs the policy of every insert/access/erase and asks it for
/// victims when space is needed. Policies also see misses so that
/// history-learning policies (LeCaR, Cacheus) can assign regret.
///
/// Not thread-safe; the owning cache serialises calls (per shard).
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// `key` was inserted into the cache (it was not resident).
  virtual void OnInsert(const std::string& key) = 0;

  /// `key` (resident) was hit.
  virtual void OnAccess(const std::string& key) = 0;

  /// `key` was removed by the cache for non-eviction reasons (invalidation).
  virtual void OnErase(const std::string& key) = 0;

  /// A lookup for `key` missed (the key is not resident). Lets
  /// history-learning policies update expert weights.
  virtual void OnMiss(const std::string& /*key*/) {}

  /// Selects an eviction victim, removes it from the policy's resident state
  /// and stores it in `*key`. Returns false if the policy tracks no entries.
  virtual bool Victim(std::string* key) = 0;

  virtual const char* Name() const = 0;
};

/// Classic least-recently-used.
class LruPolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "lru"; }

  size_t size() const { return map_.size(); }

 private:
  void Touch(const std::string& key);

  std::list<std::string> list_;  // front = LRU, back = MRU
  std::unordered_map<std::string, std::list<std::string>::iterator> map_;
};

/// Least-frequently-used with LRU tie-breaking inside a frequency bucket.
class LfuPolicy : public EvictionPolicy {
 public:
  void OnInsert(const std::string& key) override;
  void OnAccess(const std::string& key) override;
  void OnErase(const std::string& key) override;
  bool Victim(std::string* key) override;
  const char* Name() const override { return "lfu"; }

  /// Inserts `key` with a pre-seeded frequency (used by CR-LFU churn
  /// resistance when restoring frequency from history).
  void InsertWithFrequency(const std::string& key, uint64_t freq);
  /// Like Victim but breaks ties within the minimum-frequency bucket by
  /// evicting the most recently inserted key (CR-LFU churn resistance:
  /// established entries survive a churn of equal-frequency newcomers).
  bool VictimMru(std::string* key);
  /// Reports the key VictimMru would pick without removing it.
  bool PeekVictimMru(std::string* key) const;
  uint64_t FrequencyOf(const std::string& key) const;
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t freq;
    std::list<std::string>::iterator pos;  // position in its bucket list
  };

  void Bump(const std::string& key, Entry& entry);

  // freq -> keys in that bucket, front = oldest.
  std::map<uint64_t, std::list<std::string>> buckets_;
  std::unordered_map<std::string, Entry> entries_;
};

std::unique_ptr<EvictionPolicy> NewLruPolicy();
std::unique_ptr<EvictionPolicy> NewLfuPolicy();

}  // namespace adcache

#endif  // ADCACHE_CACHE_EVICTION_POLICY_H_
