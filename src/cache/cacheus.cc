#include "cache/cacheus.h"

#include <algorithm>
#include <cmath>

namespace adcache {

// ---------------------------------------------------------------------------
// SrLru
// ---------------------------------------------------------------------------

void CacheusPolicy::SrLru::Insert(const std::string& key, bool reused) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    Access(key);
    return;
  }
  if (reused) {
    // History hit: the key demonstrated reuse, so it re-enters R directly.
    r_.push_back(key);
    map_[key] = Pos{true, std::prev(r_.end())};
  } else {
    s_.push_back(key);
    map_[key] = Pos{false, std::prev(s_.end())};
  }
}

void CacheusPolicy::SrLru::Access(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    Insert(key, /*reused=*/false);
    return;
  }
  if (it->second.in_r) {
    r_.splice(r_.end(), r_, it->second.it);
    it->second.it = std::prev(r_.end());
  } else {
    // Promotion: demonstrated reuse moves the key from S to R. R is not
    // size-capped: victims drain S (scan traffic) first, and only an
    // S-empty cache falls back to R's LRU — the scan-resistance property.
    s_.erase(it->second.it);
    r_.push_back(key);
    it->second = Pos{true, std::prev(r_.end())};
  }
}

void CacheusPolicy::SrLru::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  (it->second.in_r ? r_ : s_).erase(it->second.it);
  map_.erase(it);
}

bool CacheusPolicy::SrLru::Victim(std::string* key) {
  if (!s_.empty()) {
    *key = s_.front();
    s_.pop_front();
  } else if (!r_.empty()) {
    *key = r_.front();
    r_.pop_front();
  } else {
    return false;
  }
  map_.erase(*key);
  return true;
}

// ---------------------------------------------------------------------------
// Ghost
// ---------------------------------------------------------------------------

void CacheusPolicy::Ghost::Add(const std::string& key, uint64_t time,
                               uint64_t freq) {
  Remove(key);
  while (map_.size() >= std::max<size_t>(1, capacity_)) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
  }
  fifo_.push_back(key);
  map_[key] = GhostEntry{time, freq, std::prev(fifo_.end())};
}

bool CacheusPolicy::Ghost::Take(const std::string& key, uint64_t* time,
                                uint64_t* freq) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *time = it->second.time;
  *freq = it->second.freq;
  fifo_.erase(it->second.it);
  map_.erase(it);
  return true;
}

void CacheusPolicy::Ghost::Remove(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  fifo_.erase(it->second.it);
  map_.erase(it);
}

// ---------------------------------------------------------------------------
// CacheusPolicy
// ---------------------------------------------------------------------------

CacheusPolicy::CacheusPolicy() : CacheusPolicy(Options()) {}

CacheusPolicy::CacheusPolicy(const Options& options)
    : options_(options),
      learning_rate_(options.initial_learning_rate),
      rng_(options.seed) {}

void CacheusPolicy::AdjustWeight(bool srlru_at_fault) {
  double w_sr = w_srlru_;
  double w_cr = 1.0 - w_srlru_;
  if (srlru_at_fault) {
    w_sr *= std::exp(-learning_rate_);
  } else {
    w_cr *= std::exp(-learning_rate_);
  }
  w_srlru_ = std::clamp(w_sr / (w_sr + w_cr), 0.01, 0.99);
}

void CacheusPolicy::MaybeAdaptLearningRate() {
  window_requests_++;
  if (window_requests_ < options_.adaptation_window) return;
  double hit_rate = static_cast<double>(window_hits_) /
                    static_cast<double>(window_requests_);
  // Performance degraded -> explore harder; improved/stable -> settle.
  if (hit_rate < prev_window_hit_rate_) {
    learning_rate_ = std::min(options_.max_learning_rate,
                              learning_rate_ * 1.1);
  } else {
    learning_rate_ = std::max(options_.min_learning_rate,
                              learning_rate_ * 0.9);
  }
  prev_window_hit_rate_ = hit_rate;
  window_requests_ = 0;
  window_hits_ = 0;
}

void CacheusPolicy::OnInsert(const std::string& key) {
  time_++;
  resident_++;
  h_srlru_.SetCapacity(std::max<size_t>(1, resident_ / 2));
  h_crlfu_.SetCapacity(std::max<size_t>(1, resident_ / 2));

  uint64_t t = 0;
  uint64_t freq = 0;
  bool from_sr = h_srlru_.Take(key, &t, &freq);
  bool from_cr = false;
  uint64_t cr_freq = 0;
  {
    uint64_t t2 = 0;
    from_cr = h_crlfu_.Take(key, &t2, &cr_freq);
  }
  srlru_.Insert(key, /*reused=*/from_sr || from_cr);
  // CR-LFU churn resistance: restore the frequency the key had earned.
  uint64_t restored = std::max<uint64_t>(std::max(freq, cr_freq), 0);
  if (restored > 0) {
    crlfu_.InsertWithFrequency(key, restored + 1);
  } else {
    crlfu_.OnInsert(key);
  }
}

void CacheusPolicy::OnAccess(const std::string& key) {
  time_++;
  window_hits_++;
  MaybeAdaptLearningRate();
  srlru_.Access(key);
  crlfu_.OnAccess(key);
}

void CacheusPolicy::OnErase(const std::string& key) {
  if (resident_ > 0) resident_--;
  srlru_.Erase(key);
  crlfu_.OnErase(key);
}

void CacheusPolicy::OnMiss(const std::string& key) {
  time_++;
  MaybeAdaptLearningRate();
  uint64_t t = 0;
  uint64_t freq = 0;
  // Peek fault attribution without consuming (consumption happens when the
  // key is actually re-inserted, so frequency restoration still works).
  // We duplicate minimal state by taking then re-adding.
  if (h_srlru_.Take(key, &t, &freq)) {
    AdjustWeight(/*srlru_at_fault=*/true);
    h_srlru_.Add(key, t, freq);
  } else if (h_crlfu_.Take(key, &t, &freq)) {
    AdjustWeight(/*srlru_at_fault=*/false);
    h_crlfu_.Add(key, t, freq);
  }
}

bool CacheusPolicy::Victim(std::string* key) {
  const bool use_srlru = rng_.NextDouble() < w_srlru_;
  std::string victim;
  bool ok = false;
  if (use_srlru) {
    ok = srlru_.Victim(&victim);
    if (!ok) ok = crlfu_.PeekVictimMru(&victim);
  } else {
    ok = crlfu_.PeekVictimMru(&victim);
    if (!ok) ok = srlru_.Victim(&victim);
  }
  if (!ok) return false;
  // Capture the earned frequency before the entry leaves CR-LFU.
  const uint64_t freq = crlfu_.FrequencyOf(victim);
  srlru_.Erase(victim);
  crlfu_.OnErase(victim);
  if (resident_ > 0) resident_--;
  (use_srlru ? h_srlru_ : h_crlfu_).Add(victim, time_, freq);
  *key = victim;
  return true;
}

std::unique_ptr<EvictionPolicy> NewCacheusPolicy(uint64_t seed) {
  CacheusPolicy::Options opts;
  opts.seed = seed;
  return std::make_unique<CacheusPolicy>(opts);
}

}  // namespace adcache
