#include "cache/clock_policy.h"

namespace adcache {

void ClockPolicy::OnInsert(const std::string& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->referenced = true;
    return;
  }
  // Insert just before the hand so the new entry is the last the hand
  // reaches (a full sweep of second chances ahead of it).
  Ring::iterator pos =
      ring_.insert(hand_ == ring_.end() ? ring_.end() : hand_,
                   Entry{key, false});
  map_[key] = pos;
  if (hand_ == ring_.end()) hand_ = pos;
}

void ClockPolicy::OnAccess(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    OnInsert(key);
    return;
  }
  it->second->referenced = true;
}

void ClockPolicy::OnErase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  if (hand_ == it->second) {
    ++hand_;
    if (hand_ == ring_.end()) hand_ = ring_.begin();
  }
  ring_.erase(it->second);
  map_.erase(it);
  if (ring_.empty()) hand_ = ring_.end();
}

bool ClockPolicy::Victim(std::string* key) {
  if (ring_.empty()) return false;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  // Sweep: clear reference bits until an unreferenced entry is found. At
  // most two passes terminate because bits only get cleared.
  while (hand_->referenced) {
    hand_->referenced = false;
    ++hand_;
    if (hand_ == ring_.end()) hand_ = ring_.begin();
  }
  *key = hand_->key;
  Ring::iterator victim = hand_;
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  map_.erase(victim->key);
  ring_.erase(victim);
  if (ring_.empty()) hand_ = ring_.end();
  return true;
}

std::unique_ptr<EvictionPolicy> NewClockPolicy() {
  return std::make_unique<ClockPolicy>();
}

}  // namespace adcache
