#include "cache/clock_cache.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "cache/lru_cache.h"
#include "util/hash.h"
#include "util/options_env.h"
#include "util/perf_context.h"

namespace adcache {

namespace {

// --- meta word layout (see ClockSlot in the header) ---
constexpr uint64_t kStateShift = 62;
constexpr uint64_t kStateEmpty = 0;
constexpr uint64_t kStateConstruction = 1;
constexpr uint64_t kStateInvisible = 2;
constexpr uint64_t kStateVisible = 3;
constexpr uint64_t kShareableBit = uint64_t{1} << 63;

constexpr uint64_t kRefShift = 4;
constexpr uint64_t kRefCountMask = (uint64_t{1} << 30) - 1;
constexpr uint64_t kRefUnit = uint64_t{1} << kRefShift;

constexpr uint64_t kClockMask = 0x3;
// Fresh inserts start at 1 (scan resistance: one sweep pass demotes a
// never-hit entry to evictable); a Lookup hit saturates to 3.
constexpr uint64_t kClockInit = 1;

constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c13ull;

inline uint64_t StateOf(uint64_t meta) { return meta >> kStateShift; }
inline uint64_t RefsOf(uint64_t meta) {
  return (meta >> kRefShift) & kRefCountMask;
}

inline uint64_t KeyHash(const Slice& key) {
  return Hash64(key.data(), key.size(), kHashSeed);
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ClockCache::ClockCache(size_t capacity, size_t estimated_entry_charge,
                       size_t table_capacity_hint)
    : capacity_(capacity) {
  size_t budget = std::max(capacity, table_capacity_hint);
  size_t est = std::max<size_t>(1, estimated_entry_charge);
  // 2x slots per expected entry keeps the table under ~50% load, where
  // double-hashed probes stay short; capped so a absurd estimate cannot
  // allocate unbounded metadata.
  size_t want = std::max<size_t>(16, (budget / est) * 2);
  num_slots_ = std::min(NextPow2(want), size_t{1} << 22);
  slot_mask_ = num_slots_ - 1;
  probe_limit_ = std::min<size_t>(num_slots_, 64);
  occupancy_limit_ = num_slots_ - num_slots_ / 8;  // 87.5%
  slots_ = std::make_unique<Slot[]>(num_slots_);
}

ClockCache::~ClockCache() {
  // All handles must have been released; drop everything resident.
  for (size_t i = 0; i < num_slots_; i++) {
    Slot& s = slots_[i];
    uint64_t meta = s.meta.load(std::memory_order_relaxed);
    if (meta & kShareableBit) {
      assert(RefsOf(meta) == 0);
      if (s.deleter != nullptr) s.deleter(Slice(s.key), s.value);
    }
  }
}

ClockCache::Probe ClockCache::ProbeFor(uint64_t hash) const {
  // Double hashing over a power-of-two table: any odd step is coprime with
  // the size, so the probe sequence visits every slot.
  return Probe{static_cast<size_t>(hash) & slot_mask_,
               (static_cast<size_t>(hash >> 32) << 1) | 1};
}

void ClockCache::AddUsage(int64_t delta) const {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kUsageShards;
  usage_[shard].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t ClockCache::LoadUsage() const {
  int64_t total = 0;
  for (const UsageShard& s : usage_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

ClockCache::Slot* ClockCache::FindAndRef(const Slice& key, uint64_t hash,
                                         bool touch) {
  Probe p = ProbeFor(hash);
  for (size_t i = 0; i < probe_limit_; i++) {
    Slot* s = SlotAt(p, i);
    uint64_t meta = s->meta.load(std::memory_order_acquire);
    uint64_t state = StateOf(meta);
    if (state == kStateEmpty) return nullptr;  // end of this probe chain
    if (state != kStateVisible ||
        s->tag.load(std::memory_order_relaxed) != hash) {
      continue;  // occupied by someone else (or being built/erased)
    }
    // Optimistic pin: the fetch_add itself decides. If the word it hit was
    // shareable we now hold a legitimate reference (the slot cannot be
    // freed from under us); otherwise the increment was spurious and is
    // backed out without ever touching the slot's fields.
    uint64_t old = s->meta.fetch_add(kRefUnit, std::memory_order_acquire);
    if (old & kShareableBit) {
      if (StateOf(old) == kStateVisible &&
          s->tag.load(std::memory_order_relaxed) == hash &&
          Slice(s->key).compare(key) == 0) {
        // Saturate the clock counter, skipping the RMW when a previous hit
        // already did (the common case for hot blocks).
        if (touch && (old & kClockMask) != kClockMask) {
          s->meta.fetch_or(kClockMask, std::memory_order_relaxed);
        }
        return s;
      }
      ReleaseSlot(s);  // pinned the wrong entry: drop the pin
    } else {
      s->meta.fetch_sub(kRefUnit, std::memory_order_release);
    }
  }
  return nullptr;
}

void ClockCache::ReleaseSlot(Slot* s) {
  if (s->standalone) {
    size_t charge = s->charge;
    uint64_t old = s->meta.fetch_sub(kRefUnit, std::memory_order_acq_rel);
    if (RefsOf(old) == 1) {
      // Last pin on a table-less handle: nobody else can reach it.
      if (s->deleter != nullptr) s->deleter(Slice(s->key), s->value);
      AddUsage(-static_cast<int64_t>(charge));
      delete s;
    }
    return;
  }
  uint64_t old = s->meta.fetch_sub(kRefUnit, std::memory_order_acq_rel);
  assert(RefsOf(old) > 0);
  if (RefsOf(old) == 1 && StateOf(old) == kStateInvisible) {
    // We were (probably) the last pin on an erased entry; reclaim it now
    // instead of waiting for the sweep to find it.
    TryFreeInvisible(s);
  }
}

void ClockCache::TryFreeInvisible(Slot* s) {
  for (;;) {
    uint64_t meta = s->meta.load(std::memory_order_acquire);
    if (StateOf(meta) != kStateInvisible || RefsOf(meta) != 0) {
      // Re-pinned, already being freed by someone else, or a transient
      // spurious ref is passing through; the sweep is the backstop.
      return;
    }
    if (s->meta.compare_exchange_weak(meta, kStateConstruction << kStateShift,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      FreeOwnedSlot(s);
      return;
    }
  }
}

void ClockCache::FreeOwnedSlot(Slot* s) {
  if (s->deleter != nullptr) s->deleter(Slice(s->key), s->value);
  AddUsage(-static_cast<int64_t>(s->charge));
  s->key.clear();
  s->value = nullptr;
  s->deleter = nullptr;
  s->charge = 0;
  s->tag.store(0, std::memory_order_relaxed);
  occupancy_.fetch_sub(1, std::memory_order_relaxed);
  // Construction -> empty. fetch_sub (not store) because probing lookups
  // may have parked transient reference increments on the word.
  s->meta.fetch_sub(kStateConstruction << kStateShift,
                    std::memory_order_release);
}

template <typename StillNeeded>
void ClockCache::Sweep(size_t max_scan, bool ignore_clock, bool demote,
                       StillNeeded still_needed) {
  // The hand is claimed in strides so concurrent sweepers pay one shared
  // RMW per kStride slots instead of one per slot. A sweeper that early-
  // exits mid-stride simply leaves the rest of its stride for the hand's
  // next lap — per-visit clock decrements are approximate by design.
  constexpr uint64_t kStride = 64;
  size_t freed_bytes = 0;
  size_t scanned = 0;
  while (scanned < max_scan && still_needed(freed_bytes)) {
    uint64_t base = clock_pointer_.fetch_add(kStride,
                                             std::memory_order_relaxed);
    for (uint64_t k = 0;
         k < kStride && scanned < max_scan && still_needed(freed_bytes);
         k++, scanned++) {
      Slot* s = &slots_[(base + k) & slot_mask_];
      uint64_t meta = s->meta.load(std::memory_order_acquire);
      if (!(meta & kShareableBit)) continue;  // empty or under construction
      if (RefsOf(meta) != 0) continue;        // pinned: never reclaimed
      if (StateOf(meta) == kStateVisible && (meta & kClockMask) != 0 &&
          !ignore_clock) {
        // Second-chance: decrement and move on (CAS failure means the slot
        // just got touched or pinned — skip it either way).
        s->meta.compare_exchange_weak(meta, meta - 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
        continue;
      }
      // Counter at zero (or erased/forced): claim exclusively and free.
      if (s->meta.compare_exchange_strong(meta,
                                          kStateConstruction << kStateShift,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        if (demote && eviction_cb_ && StateOf(meta) == kStateVisible) {
          // Capacity eviction of a live entry: offer it for demotion while
          // we hold the slot exclusively (kInvisible entries were erased —
          // invalidations are never demoted).
          eviction_cb_(Slice(s->key), s->value, s->charge);
        }
        freed_bytes += s->charge;
        FreeOwnedSlot(s);
      }
    }
  }
}

void ClockCache::EvictToFit(size_t incoming, size_t max_scan) {
  int64_t cap = static_cast<int64_t>(capacity_.load(std::memory_order_relaxed));
  int64_t excess = LoadUsage() + static_cast<int64_t>(incoming) - cap;
  if (excess <= 0) return;
  Sweep(max_scan, /*ignore_clock=*/false, /*demote=*/true,
        [excess](size_t freed) {
          return static_cast<int64_t>(freed) < excess;
        });
}

Cache::Handle* ClockCache::Insert(const Slice& key, void* value, size_t charge,
                                  Deleter deleter) {
  uint64_t hash = KeyHash(key);
  // Amortized eviction: each insert advances the shared clock hand by a
  // bounded amount, so sustained insert traffic converges usage to the
  // budget without any insert paying for a full pass.
  EvictToFit(charge, std::min<size_t>(num_slots_, 512));

  // Retire any existing entry for the key BEFORE claiming a slot: probe
  // chains stop at the first empty slot, so freeing the old entry after
  // publishing the new one further along the sequence would orphan the new
  // entry behind the hole. Erase-first means the freed slot is itself the
  // first empty slot the claim loop finds. (A concurrent Lookup in the
  // window between erase and publish misses — benign for a cache.)
  EraseMatching(key, hash, nullptr);

  Slot* claimed = nullptr;
  Probe p = ProbeFor(hash);
  if (charge <= capacity_.load(std::memory_order_relaxed) &&
      occupancy_.load(std::memory_order_relaxed) < occupancy_limit_) {
    for (size_t i = 0; i < probe_limit_ && claimed == nullptr; i++) {
      Slot* s = SlotAt(p, i);
      uint64_t expected = 0;
      if (s->meta.load(std::memory_order_relaxed) == 0 &&
          s->meta.compare_exchange_strong(
              expected, kStateConstruction << kStateShift,
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        claimed = s;
      }
    }
  }
  if (claimed == nullptr) {
    // Table full along this probe sequence (or entry larger than the whole
    // budget): hand back a standalone pinned handle. The value is usable
    // and charged, just never findable; freed on last Release.
    Slot* s = new Slot();
    s->standalone = true;
    s->key.assign(key.data(), key.size());
    s->value = value;
    s->deleter = deleter;
    s->charge = charge;
    s->meta.store((kStateInvisible << kStateShift) | kRefUnit,
                  std::memory_order_relaxed);
    AddUsage(static_cast<int64_t>(charge));
    return reinterpret_cast<Handle*>(s);
  }

  occupancy_.fetch_add(1, std::memory_order_relaxed);
  claimed->key.assign(key.data(), key.size());
  claimed->value = value;
  claimed->deleter = deleter;
  claimed->charge = charge;
  claimed->tag.store(hash, std::memory_order_relaxed);
  AddUsage(static_cast<int64_t>(charge));
  // Construction -> visible, +1 pin (the returned handle), clock = init.
  // fetch_add (not store): transient probe refs may be parked on the word.
  claimed->meta.fetch_add(
      ((kStateVisible - kStateConstruction) << kStateShift) | kRefUnit |
          kClockInit,
      std::memory_order_release);
  return reinterpret_cast<Handle*>(claimed);
}

Cache::Handle* ClockCache::Lookup(const Slice& key) {
  Slot* s = FindAndRef(key, KeyHash(key), /*touch=*/true);
  if (s != nullptr) {
    hits_.Inc();
  } else {
    misses_.Inc();
  }
  return reinterpret_cast<Handle*>(s);
}

void ClockCache::MultiLookup(size_t n, const Slice* keys, Handle** handles) {
  // No shard bucketing needed: every probe is lock-free, so the batch win
  // is just one telemetry add per counter.
  size_t hits = 0;
  for (size_t i = 0; i < n; i++) {
    Slot* s = FindAndRef(keys[i], KeyHash(keys[i]), /*touch=*/true);
    handles[i] = reinterpret_cast<Handle*>(s);
    if (s != nullptr) hits++;
  }
  if (hits > 0) hits_.Add(hits);
  if (n - hits > 0) misses_.Add(n - hits);
}

void ClockCache::MultiRelease(size_t n, Handle* const* handles) {
  for (size_t i = 0; i < n; i++) {
    if (handles[i] != nullptr) {
      ReleaseSlot(reinterpret_cast<Slot*>(handles[i]));
    }
  }
}

Cache::Handle* ClockCache::Ref(Handle* handle) {
  // The caller already holds a pin, so the slot is shareable by contract.
  reinterpret_cast<Slot*>(handle)->meta.fetch_add(kRefUnit,
                                                  std::memory_order_relaxed);
  return handle;
}

bool ClockCache::ContainsImpl(const Slice& key) {
  Slot* s = FindAndRef(key, KeyHash(key), /*touch=*/false);
  if (s == nullptr) return false;
  ReleaseSlot(s);
  return true;
}

bool ClockCache::Contains(const Slice& key) const {
  ADCACHE_PERF_COUNTER_ADD(block_cache_contains_count, 1);
  // The probe mutates only the slot's atomic meta (a transient pin); the
  // cache is logically unchanged, hence the const_cast.
  return const_cast<ClockCache*>(this)->ContainsImpl(key);
}

void ClockCache::Release(Handle* handle) {
  // Unlike the LRU shard there is no evict-on-release: hits release
  // constantly, and charging every one a sweep would put eviction work on
  // the hottest path. Inserts (and SetCapacity) drive eviction instead, so
  // usage can stay over a shrunken budget until insert traffic arrives —
  // the same policy as RocksDB's HyperClockCache.
  ReleaseSlot(reinterpret_cast<Slot*>(handle));
}

void* ClockCache::Value(Handle* handle) {
  return reinterpret_cast<Slot*>(handle)->value;
}

void ClockCache::EraseMatching(const Slice& key, uint64_t hash, Slot* skip) {
  Probe p = ProbeFor(hash);
  for (size_t i = 0; i < probe_limit_; i++) {
    Slot* s = SlotAt(p, i);
    if (s == skip) continue;
    uint64_t meta = s->meta.load(std::memory_order_acquire);
    uint64_t state = StateOf(meta);
    if (state == kStateEmpty) return;  // end of probe chain
    if (state != kStateVisible ||
        s->tag.load(std::memory_order_relaxed) != hash) {
      continue;
    }
    uint64_t old = s->meta.fetch_add(kRefUnit, std::memory_order_acquire);
    if (!(old & kShareableBit)) {
      s->meta.fetch_sub(kRefUnit, std::memory_order_release);
      continue;
    }
    if (StateOf(old) == kStateVisible &&
        s->tag.load(std::memory_order_relaxed) == hash &&
        Slice(s->key).compare(key) == 0) {
      // Visible -> invisible: lookups stop finding it; existing pins stay
      // valid and the entry is freed when the last one (possibly ours,
      // below) drops.
      uint64_t cur = s->meta.load(std::memory_order_relaxed);
      while (StateOf(cur) == kStateVisible &&
             !s->meta.compare_exchange_weak(
                 cur, cur & ~(uint64_t{1} << kStateShift),
                 std::memory_order_acq_rel, std::memory_order_relaxed)) {
      }
    }
    ReleaseSlot(s);
    // Keep scanning: concurrent inserts can leave duplicates.
  }
}

void ClockCache::Erase(const Slice& key) {
  EraseMatching(key, KeyHash(key), nullptr);
}

void ClockCache::SetCapacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  // One bounded sweep now; if the shrink is deeper than the budget can
  // satisfy, subsequent Inserts (and the controller's next SetCapacity)
  // keep nibbling. The budget is capped below a full pass of a large
  // table: the controller retargets continuously, and burning a full
  // 32k-slot scan per retarget on a sparse table steals CPU from readers.
  // Readers are never stalled — there is no stop-the-world here.
  EvictToFit(0, std::min<size_t>(num_slots_, 4096));
}

size_t ClockCache::GetCapacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

size_t ClockCache::GetUsage() const {
  int64_t u = LoadUsage();
  return u > 0 ? static_cast<size_t>(u) : 0;
}

void ClockCache::Prune() {
  // Evict every unpinned entry: one full pass with the counter ignored.
  // Prune is an invalidation, not capacity pressure — no demotion.
  Sweep(num_slots_, /*ignore_clock=*/true, /*demote=*/false,
        [](size_t) { return true; });
}

void ClockCache::SetEvictionCallback(EvictionCallback callback) {
  eviction_cb_ = std::move(callback);
}

double ClockCache::slot_occupancy() const {
  return static_cast<double>(occupancy_.load(std::memory_order_relaxed)) /
         static_cast<double>(num_slots_);
}

uint64_t ClockCache::hits() const { return hits_.Load(); }

uint64_t ClockCache::misses() const { return misses_.Load(); }

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

BlockCacheImpl DefaultBlockCacheImpl() {
  return util::OptionsFromEnv::String("ADCACHE_BLOCK_CACHE_IMPL") == "clock"
             ? BlockCacheImpl::kClock
             : BlockCacheImpl::kLRU;
}

std::shared_ptr<Cache> NewClockCache(size_t capacity,
                                     size_t estimated_entry_charge,
                                     size_t table_capacity_hint) {
  return std::make_shared<ClockCache>(capacity, estimated_entry_charge,
                                      table_capacity_hint);
}

std::shared_ptr<Cache> NewBlockCache(BlockCacheImpl impl, size_t capacity,
                                     size_t table_capacity_hint) {
  if (impl == BlockCacheImpl::kClock) {
    return NewClockCache(capacity, /*estimated_entry_charge=*/4160,
                         table_capacity_hint);
  }
  return NewLRUCache(capacity);
}

}  // namespace adcache
