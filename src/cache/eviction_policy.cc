#include "cache/eviction_policy.h"

#include <cassert>

namespace adcache {

// ---------------------------------------------------------------------------
// LruPolicy
// ---------------------------------------------------------------------------

void LruPolicy::Touch(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    list_.push_back(key);
    map_[key] = std::prev(list_.end());
  } else {
    list_.splice(list_.end(), list_, it->second);
  }
}

void LruPolicy::OnInsert(const std::string& key) { Touch(key); }
void LruPolicy::OnAccess(const std::string& key) { Touch(key); }

void LruPolicy::OnErase(const std::string& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    list_.erase(it->second);
    map_.erase(it);
  }
}

bool LruPolicy::Victim(std::string* key) {
  if (list_.empty()) return false;
  *key = list_.front();
  map_.erase(list_.front());
  list_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// LfuPolicy
// ---------------------------------------------------------------------------

void LfuPolicy::InsertWithFrequency(const std::string& key, uint64_t freq) {
  assert(entries_.find(key) == entries_.end());
  auto& bucket = buckets_[freq];
  bucket.push_back(key);
  entries_[key] = Entry{freq, std::prev(bucket.end())};
}

uint64_t LfuPolicy::FrequencyOf(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.freq;
}

void LfuPolicy::Bump(const std::string& key, Entry& entry) {
  auto bucket_it = buckets_.find(entry.freq);
  bucket_it->second.erase(entry.pos);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  entry.freq++;
  auto& bucket = buckets_[entry.freq];
  bucket.push_back(key);
  entry.pos = std::prev(bucket.end());
}

void LfuPolicy::OnInsert(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    InsertWithFrequency(key, 1);
  } else {
    Bump(key, it->second);
  }
}

void LfuPolicy::OnAccess(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    InsertWithFrequency(key, 1);
  } else {
    Bump(key, it->second);
  }
}

void LfuPolicy::OnErase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto bucket_it = buckets_.find(it->second.freq);
  bucket_it->second.erase(it->second.pos);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  entries_.erase(it);
}

bool LfuPolicy::Victim(std::string* key) {
  if (buckets_.empty()) return false;
  auto bucket_it = buckets_.begin();  // lowest frequency
  *key = bucket_it->second.front();
  bucket_it->second.pop_front();
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  entries_.erase(*key);
  return true;
}

bool LfuPolicy::PeekVictimMru(std::string* key) const {
  if (buckets_.empty()) return false;
  *key = buckets_.begin()->second.back();
  return true;
}

bool LfuPolicy::VictimMru(std::string* key) {
  if (buckets_.empty()) return false;
  auto bucket_it = buckets_.begin();
  *key = bucket_it->second.back();
  bucket_it->second.pop_back();
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  entries_.erase(*key);
  return true;
}

std::unique_ptr<EvictionPolicy> NewLruPolicy() {
  return std::make_unique<LruPolicy>();
}

std::unique_ptr<EvictionPolicy> NewLfuPolicy() {
  return std::make_unique<LfuPolicy>();
}

}  // namespace adcache
