#ifndef ADCACHE_CACHE_RANGE_CACHE_H_
#define ADCACHE_CACHE_RANGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/eviction_policy.h"
#include "util/sharded_counter.h"
#include "util/slice.h"

namespace adcache {

/// A key-value pair returned by / fed into scans.
struct KvPair {
  std::string key;
  std::string value;
};

/// RangeCache is a result-based cache (re-implementation of Range Cache,
/// ICDE '24, as the AdCache paper itself does): query results are stored as
/// logically ordered key-value entries, decoupled from the physical SSTable
/// layout and therefore immune to compaction.
///
/// Entries live in an ordered map (the paper's skip list; any ordered
/// dictionary gives the same semantics). Each entry tracks:
///   - `adjacent_next`: the next cache entry is known to be this key's direct
///     DB successor (set when a scan observed them back to back);
///   - `covers_from`: the smallest seek key for which this entry is known to
///     be the first DB result — a scan from `start` can only begin at this
///     entry if `covers_from <= start`.
/// A scan is served from cache only if the full requested prefix is present
/// and chained; otherwise it is a miss and falls through to the LSM-tree
/// (partial hits still pay the full seek, as the paper notes).
///
/// Replacement is entry-granular and delegated to an EvictionPolicy
/// (LRU by default; LeCaR / Cacheus for the learning baselines).
/// Thread-safe via a single mutex; see ShardedRangeCache for multi-client use.
class RangeCache {
 public:
  RangeCache(size_t capacity_bytes, std::unique_ptr<EvictionPolicy> policy);

  RangeCache(const RangeCache&) = delete;
  RangeCache& operator=(const RangeCache&) = delete;

  /// Point lookup. Returns true and fills `*value` on an exact hit.
  bool Get(const Slice& key, std::string* value);

  /// Range lookup: try to serve `n` entries starting from the first DB key
  /// >= `start`. All-or-nothing: returns true only if the full prefix of `n`
  /// entries (or a chain that provably reaches end-of-data) is cached.
  bool GetScan(const Slice& start, size_t n, std::vector<KvPair>* results);

  /// Partial variant for cross-shard stitching (ShardedRangeCache): appends
  /// up to `n` provably-consecutive entries starting from the first DB key
  /// >= `start` and returns how many were appended (0 when coverage at
  /// `start` cannot be proven). Does not touch the hit/miss counters or the
  /// probe PerfContext counter — the facade settles those once per logical
  /// scan, after the stitched outcome is known — but served entries do
  /// touch the eviction policy even if the caller later abandons the scan
  /// (recency approximation).
  size_t GetScanPart(const Slice& start, size_t n,
                     std::vector<KvPair>* results);

  /// Stitched-scan accounting hooks for ShardedRangeCache: one shard cannot
  /// see whether a cross-shard scan ultimately succeeded, so the facade
  /// settles hit/miss counters (and the miss's ghost-history signal) after
  /// the fact.
  void RecordStitchedScanHit() { hits_.Inc(); }
  void RecordStitchedScanMiss(const Slice& start);

  /// Admits a point-lookup result. Returns false when the admitted key is
  /// now the largest entry here — there was no in-shard successor whose
  /// coverage claim the defensive repair could clip, so ShardedRangeCache
  /// must extend the repair into the next non-empty shard (see
  /// RepairLeadingClaim).
  bool PutPoint(const Slice& key, const Slice& value);

  /// Admits (part of) a scan result. `results` are the consecutive DB
  /// entries returned by a scan seeded at `start`. At most `admit_limit`
  /// *new* entries are inserted (already-cached entries are refreshed and
  /// chained for free, so overlapping scans gradually extend coverage —
  /// paper §3.4 partial admission).
  void PutScan(const Slice& start, const std::vector<KvPair>& results,
               size_t admit_limit);

  /// Write-through for a DB Put: updates the cached value if present;
  /// otherwise breaks any adjacency / coverage claims the new key falsifies.
  /// Returns false when this cache holds no entry at or after `key` — any
  /// claim spanning the new key then lives in a later shard's leading entry
  /// (a stitched PutScan's cross-boundary continuation claim), which
  /// ShardedRangeCache repairs via RepairLeadingClaim.
  bool InvalidateWrite(const Slice& key, const Slice& value);

  /// Cross-shard claim repair hook (ShardedRangeCache): if the smallest
  /// entry here claims coverage reaching back to or before `key` — a
  /// cross-boundary continuation claim that a new DB key at `key` just
  /// falsified — clips that claim to start just after `key`. Returns false
  /// iff this cache is empty (the claim, if any, lives in a later shard).
  bool RepairLeadingClaim(const Slice& key);

  /// Removes a deleted key and conservatively repairs adjacency.
  void InvalidateDelete(const Slice& key);

  /// Drops every entry.
  void Clear();

  void SetCapacity(size_t capacity_bytes);
  size_t GetCapacity() const;
  size_t GetUsage() const;
  size_t EntryCount() const;

  uint64_t hits() const { return hits_.Load(); }
  uint64_t misses() const { return misses_.Load(); }
  uint64_t evictions() const { return evictions_.Load(); }

  const EvictionPolicy* policy() const { return policy_.get(); }

 private:
  struct Entry {
    std::string value;
    std::string covers_from;
    bool adjacent_next = false;
    size_t charge = 0;
  };

  using Map = std::map<std::string, Entry>;

  size_t ChargeFor(const Slice& key, const Slice& value) const;
  void EvictToFit();                 // holds mu_
  void RemoveEntry(Map::iterator it);  // holds mu_; fixes pred adjacency

  mutable std::mutex mu_;
  size_t capacity_;
  size_t usage_ = 0;
  Map map_;
  std::unique_ptr<EvictionPolicy> policy_;
  // Per-thread sharded so hot-path telemetry doesn't contend a cacheline.
  util::ShardedCounter hits_;
  util::ShardedCounter misses_;
  util::ShardedCounter evictions_;
};

/// Key-range partitioned wrapper for multi-client workloads (paper §4.4):
/// the key space is split into `num_shards` contiguous partitions, each an
/// independent RangeCache with its own lock. Scans that stay inside one
/// partition (the common case) take a single lock.
class ShardedRangeCache {
 public:
  using PolicyFactory = std::unique_ptr<EvictionPolicy> (*)(uint64_t seed);

  /// `boundaries` are the (sorted) lower bounds of shards 1..n-1; keys below
  /// boundaries[0] map to shard 0.
  ShardedRangeCache(size_t capacity_bytes,
                    std::vector<std::string> boundaries,
                    PolicyFactory policy_factory, uint64_t seed = 42);

  /// Same partitioning, but with one caller-supplied policy per shard
  /// (`policies.size()` must be `boundaries.size() + 1`).
  ShardedRangeCache(size_t capacity_bytes,
                    std::vector<std::string> boundaries,
                    std::vector<std::unique_ptr<EvictionPolicy>> policies);

  bool Get(const Slice& key, std::string* value);
  bool GetScan(const Slice& start, size_t n, std::vector<KvPair>* results);
  void PutPoint(const Slice& key, const Slice& value);
  void PutScan(const Slice& start, const std::vector<KvPair>& results,
               size_t admit_limit);
  void InvalidateWrite(const Slice& key, const Slice& value);
  void InvalidateDelete(const Slice& key);
  void Clear();
  void SetCapacity(size_t capacity_bytes);
  /// Repartitions the per-shard budgets to `capacities` (one entry per
  /// shard; their sum becomes the reported capacity). Shards over their new
  /// budget shrink before any shard grows, so transient total usage never
  /// exceeds the new sum. This is how per-shard budget leases physically
  /// reapportion the range cache (see core::PolicyController).
  void SetShardCapacities(const std::vector<size_t>& capacities);
  /// The budget most recently requested (shards hold ceil-divided splits,
  /// so summing their capacities could over-report by up to n-1 bytes).
  size_t GetCapacity() const { return capacity_; }
  size_t GetUsage() const;
  size_t EntryCount() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t num_shards() const { return shards_.size(); }
  /// Per-shard cache, exposed for telemetry: its hits()/misses() feed the
  /// per-shard h_est behind budget leases.
  const RangeCache* shard(size_t i) const { return shards_[i].get(); }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  size_t ShardFor(const Slice& key) const;
  /// Repairs cross-boundary continuation claims falsified by a new DB key
  /// at `key` when the owner shard (`owner_shard`) held no entry at/after
  /// it: clips the leading claim of the first non-empty later shard. Stops
  /// there — a claim in any shard beyond it would span that shard's
  /// smallest cached key (a real DB key) and was already broken when that
  /// key was written.
  void RepairClaimsAfter(size_t owner_shard, const Slice& key);

  std::vector<std::string> boundaries_;
  std::vector<std::unique_ptr<RangeCache>> shards_;
  size_t capacity_;
};

}  // namespace adcache

#endif  // ADCACHE_CACHE_RANGE_CACHE_H_
