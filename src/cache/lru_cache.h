#ifndef ADCACHE_CACHE_LRU_CACHE_H_
#define ADCACHE_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "util/sharded_counter.h"

namespace adcache {

namespace cache_internal {

/// One cache entry. Lives in the hash table and (when unpinned and resident)
/// in the intrusive LRU list.
struct LRUHandle {
  void* value;
  Cache::Deleter deleter;
  LRUHandle* next;
  LRUHandle* prev;
  size_t charge;
  uint32_t refs;     // external pins + 1 while in_cache
  bool in_cache;     // whether the hash table still points at this entry
  std::string key;
};

/// Transparent string hash: lets the shard table answer Slice lookups
/// without materializing a std::string key per probe (the block-cache key
/// is 16 bytes — past SSO, so the old conversion heap-allocated).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view sv) const {
    return std::hash<std::string_view>{}(sv);
  }
};

/// Single shard: mutex-protected hash table + LRU list, charge-based budget.
class LRUCacheShard {
 public:
  LRUCacheShard();
  ~LRUCacheShard();

  LRUCacheShard(const LRUCacheShard&) = delete;
  LRUCacheShard& operator=(const LRUCacheShard&) = delete;

  Cache::Handle* Insert(const Slice& key, void* value, size_t charge,
                        Cache::Deleter deleter);
  Cache::Handle* Lookup(const Slice& key);
  /// Batched Lookup: one mutex acquisition for the whole sub-batch. For
  /// each j, looks up keys[indices[j]] into handles[indices[j]] (indices ==
  /// nullptr means the identity mapping over [0, m)). Returns the hit count.
  size_t LookupBatch(const Slice* keys, const uint32_t* indices, size_t m,
                     Cache::Handle** handles);
  /// Batched Release: one mutex acquisition (and one eviction check) for
  /// the whole sub-batch. Releases handles[indices[j]] for each j (indices
  /// == nullptr means the identity mapping over [0, m)); all referenced
  /// handles must be non-null and belong to this shard.
  void ReleaseBatch(Cache::Handle* const* handles, const uint32_t* indices,
                    size_t m);
  /// Adds a pin to an already-pinned entry of this shard.
  void Ref(Cache::Handle* handle);
  bool Contains(const Slice& key) const;
  void Release(Cache::Handle* handle);
  void Erase(const Slice& key);
  void SetCapacity(size_t capacity);
  size_t GetCapacity() const;
  size_t GetUsage() const;
  void Prune();

  /// Points this shard at the owning cache's eviction callback (may be
  /// null). Not synchronised — install before traffic (see
  /// Cache::SetEvictionCallback).
  void SetEvictionCallback(const Cache::EvictionCallback* callback) {
    eviction_cb_ = callback;
  }

 private:
  void LRU_Remove(LRUHandle* e);
  void LRU_Append(LRUHandle* e);
  /// Drops in_cache; frees if refcount hits zero. Caller holds mu_.
  void FinishErase(LRUHandle* e);
  void Unref(LRUHandle* e);
  /// Unlinks LRU entries until usage_ <= capacity_, appending the victims
  /// (each exclusively owned once unlinked — LRU residents hold exactly the
  /// cache's reference) to `evicted`. Caller holds mu_ and must pass the
  /// victims to FinishEvictionsUnlocked() after releasing it, so the
  /// demotion callback and the deleter never run under the shard mutex.
  void EvictToFit(std::vector<LRUHandle*>* evicted);
  /// Runs callback + deleter and frees each victim. Caller must NOT hold
  /// mu_.
  void FinishEvictionsUnlocked(const std::vector<LRUHandle*>& evicted);

  const Cache::EvictionCallback* eviction_cb_ = nullptr;
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  size_t usage_ = 0;
  LRUHandle lru_;  // dummy head; lru_.next is oldest
  std::unordered_map<std::string, LRUHandle*, TransparentStringHash,
                     std::equal_to<>>
      table_;
};

}  // namespace cache_internal

/// Cache implementation over 2^num_shard_bits LRUCacheShards, sharded by key
/// hash (mirrors RocksDB's sharded block cache; paper §4.4).
class ShardedLRUCache : public Cache {
 public:
  ShardedLRUCache(size_t capacity, int num_shard_bits);

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 Deleter deleter) override;
  Handle* Lookup(const Slice& key) override;
  void MultiLookup(size_t n, const Slice* keys, Handle** handles) override;
  void MultiRelease(size_t n, Handle* const* handles) override;
  Handle* Ref(Handle* handle) override;
  bool Contains(const Slice& key) const override;
  void Release(Handle* handle) override;
  void* Value(Handle* handle) override;
  void Erase(const Slice& key) override;
  void SetCapacity(size_t capacity) override;
  size_t GetCapacity() const override;
  size_t GetUsage() const override;
  void Prune() override;
  void SetEvictionCallback(EvictionCallback callback) override;
  uint64_t hits() const override;
  uint64_t misses() const override;

 private:
  cache_internal::LRUCacheShard& ShardFor(const Slice& key);

  EvictionCallback eviction_cb_;  // install before traffic
  std::vector<cache_internal::LRUCacheShard> shards_;
  uint32_t shard_mask_;
  std::atomic<size_t> capacity_;
  // Hit/miss telemetry lives outside the shard mutexes, per-thread sharded,
  // so hot read paths don't bounce a shared cacheline per lookup.
  util::ShardedCounter hits_;
  util::ShardedCounter misses_;
};

}  // namespace adcache

#endif  // ADCACHE_CACHE_LRU_CACHE_H_
