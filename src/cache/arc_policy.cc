#include "cache/arc_policy.h"

#include <algorithm>

namespace adcache {

void ArcPolicy::OnInsert(const std::string& key) {
  if (t1_.Contains(key) || t2_.Contains(key)) {
    OnAccess(key);
    return;
  }
  if (b1_.Contains(key)) {
    // Ghost hit in B1: recency working set is larger than p — grow it.
    double delta = b1_.entries.size() >= b2_.entries.size()
                       ? 1.0
                       : static_cast<double>(b2_.entries.size()) /
                             static_cast<double>(b1_.entries.size());
    p_ = std::min(p_ + delta,
                  static_cast<double>(t1_.entries.size() +
                                      t2_.entries.size() + 1));
    b1_.Remove(key);
    t2_.PushMru(key);  // re-admitted with demonstrated reuse
  } else if (b2_.Contains(key)) {
    double delta = b2_.entries.size() >= b1_.entries.size()
                       ? 1.0
                       : static_cast<double>(b1_.entries.size()) /
                             static_cast<double>(b2_.entries.size());
    p_ = std::max(p_ - delta, 0.0);
    b2_.Remove(key);
    t2_.PushMru(key);
  } else {
    t1_.PushMru(key);
  }
  TrimGhosts();
}

void ArcPolicy::OnAccess(const std::string& key) {
  if (t1_.Contains(key)) {
    t1_.Remove(key);
    t2_.PushMru(key);
  } else if (t2_.Contains(key)) {
    t2_.Remove(key);
    t2_.PushMru(key);
  } else {
    OnInsert(key);
  }
}

void ArcPolicy::OnErase(const std::string& key) {
  t1_.Remove(key);
  t2_.Remove(key);
  b1_.Remove(key);
  b2_.Remove(key);
}

void ArcPolicy::OnMiss(const std::string& /*key*/) {
  // Ghost-hit adaptation happens on re-insertion (OnInsert), where ARC's
  // REQUEST(x) case for B1/B2 membership is handled.
}

bool ArcPolicy::Victim(std::string* key) {
  // REPLACE(): evict from T1 if it exceeds the target p, else from T2.
  bool from_t1 =
      !t1_.entries.empty() &&
      (static_cast<double>(t1_.entries.size()) > p_ || t2_.entries.empty());
  if (from_t1) {
    if (!t1_.PopLru(key)) return false;
    b1_.PushMru(*key);
  } else {
    if (!t2_.PopLru(key)) {
      if (!t1_.PopLru(key)) return false;
      b1_.PushMru(*key);
      TrimGhosts();
      return true;
    }
    b2_.PushMru(*key);
  }
  TrimGhosts();
  return true;
}

void ArcPolicy::TrimGhosts() {
  // Keep each ghost list no larger than the resident population.
  size_t resident = t1_.entries.size() + t2_.entries.size();
  size_t cap = std::max<size_t>(resident, 1);
  std::string dropped;
  while (b1_.entries.size() > cap) b1_.PopLru(&dropped);
  while (b2_.entries.size() > cap) b2_.PopLru(&dropped);
}

std::unique_ptr<EvictionPolicy> NewArcPolicy() {
  return std::make_unique<ArcPolicy>();
}

}  // namespace adcache
