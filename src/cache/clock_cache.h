#ifndef ADCACHE_CACHE_CLOCK_CACHE_H_
#define ADCACHE_CACHE_CLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache.h"
#include "util/sharded_counter.h"

namespace adcache {

namespace cache_internal {

/// One slot of the ClockCache's open-addressed table (also the backing
/// object for "standalone" handles that never enter the table). All
/// concurrent coordination happens through `meta`, a single packed atomic
/// word; the plain fields below it are written only while the writer holds
/// the slot exclusively (kConstruction state) and read only while the reader
/// holds a reference, so they never race.
///
/// `meta` layout (64 bits):
///
///   bits 63..62  state        00 kEmpty         slot unoccupied
///                             01 kConstruction  exclusively owned (being
///                                               filled or being freed)
///                             10 kInvisible     occupied, erased: lookups
///                                               skip it, pins stay valid
///                             11 kVisible       occupied and findable
///   bits 33..4   refs         external pins (30 bits)
///   bits  1..0   clock        CLOCK replacement counter, 0..3
///
/// "Shareable" = bit 63 set (kVisible or kInvisible): references may be
/// acquired with a plain fetch_add. A slot can only be freed or reused by
/// first CAS-ing a shareable-with-zero-refs word to kConstruction, so any
/// thread that observed shareable state when its fetch_add landed holds a
/// legitimate pin. Probing threads that raced (the old word was empty or
/// under construction) simply fetch_sub their increment back out; state
/// bits are never touched by reference traffic, so the spurious ref only
/// briefly delays an inserter's CAS.
struct ClockSlot {
  std::atomic<uint64_t> meta{0};
  /// 64-bit hash of the resident key; pre-reference filter only (the full
  /// key is re-compared under a held reference).
  std::atomic<uint64_t> tag{0};

  // Exclusively-owned fields (see class comment).
  std::string key;
  void* value = nullptr;
  Cache::Deleter deleter = nullptr;
  size_t charge = 0;
  /// Immutable after construction: true for heap-allocated fallback handles
  /// that are not part of any table (freed on last Release).
  bool standalone = false;
};

}  // namespace cache_internal

/// Lock-free CLOCK-replacement cache in the style of RocksDB's
/// HyperClockCache: a fixed-size open-addressed hash table of ClockSlots,
/// no mutexes anywhere. On the hot path a Lookup hit costs one fetch_add
/// (the pin) and one key compare (plus a fetch_or to saturate the clock
/// counter only when a previous hit has not already done so); Release is a
/// single fetch_sub. Eviction is a clock hand (free-running atomic cursor)
/// that decrements per-slot counters and reclaims only unreferenced slots
/// via CAS. It runs on Insert and SetCapacity — never on Lookup/Release —
/// so readers are never stalled, including during SetCapacity, which makes
/// shrinking incremental: one bounded sweep now, the remainder amortized
/// over subsequent Inserts (the AdCache dynamic-boundary controller
/// retargets the block-cache budget continuously, so a stop-the-world
/// shrink would stall the read path it is trying to help).
///
/// Deliberate departures from ShardedLRUCache semantics, all benign for a
/// block cache (keys are (file#, offset), so a key's value is immutable and
/// file numbers are never reused):
///   - A probe sequence stops at the first empty slot, so an entry displaced
///     past a slot that was later evicted can become unreachable (a false
///     miss); it is reclaimed by the sweep and the re-read re-inserts.
///   - Inserting an existing key erases the old entry before publishing the
///     new one (so the freed slot is reused and never orphans the new entry
///     behind an empty-slot probe stop); a concurrent Lookup in that window
///     misses. Two racing inserts of one key can leave both entries live
///     and findable until the sweep reclaims one — identical values by the
///     block cache's immutable-key contract.
///   - An entry's charge stays in GetUsage() until the entry is actually
///     freed: erased-but-pinned entries remain charged (ShardedLRUCache
///     uncharges on Erase even while pinned).
/// When the table is full (occupancy limit) or the entry cannot fit, Insert
/// returns a heap-allocated "standalone" handle: the caller can use the
/// value normally, it is charged against usage, and it is freed on the last
/// Release without ever being findable by Lookup.
class ClockCache : public Cache {
 public:
  /// `estimated_entry_charge` sizes the slot table:
  /// ~2 * max(capacity, table_capacity_hint) / estimated_entry_charge slots
  /// (rounded up to a power of two), so the table keeps headroom even if
  /// SetCapacity later grows the budget up to the hint. The table never
  /// resizes.
  ClockCache(size_t capacity, size_t estimated_entry_charge,
             size_t table_capacity_hint = 0);
  ~ClockCache() override;

  ClockCache(const ClockCache&) = delete;
  ClockCache& operator=(const ClockCache&) = delete;

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 Deleter deleter) override;
  Handle* Lookup(const Slice& key) override;
  void MultiLookup(size_t n, const Slice* keys, Handle** handles) override;
  void MultiRelease(size_t n, Handle* const* handles) override;
  Handle* Ref(Handle* handle) override;
  bool Contains(const Slice& key) const override;
  void Release(Handle* handle) override;
  void* Value(Handle* handle) override;
  void Erase(const Slice& key) override;
  void SetCapacity(size_t capacity) override;
  size_t GetCapacity() const override;
  size_t GetUsage() const override;
  void Prune() override;
  void SetEvictionCallback(EvictionCallback callback) override;
  double slot_occupancy() const override;
  uint64_t hits() const override;
  uint64_t misses() const override;

  size_t table_size() const { return num_slots_; }
  size_t occupancy() const {
    return occupancy_.load(std::memory_order_relaxed);
  }

 private:
  using Slot = cache_internal::ClockSlot;

  struct Probe {
    size_t index;
    size_t step;
  };

  Probe ProbeFor(uint64_t hash) const;
  Slot* SlotAt(const Probe& p, size_t i) {
    return &slots_[(p.index + i * p.step) & slot_mask_];
  }
  const Slot* SlotAt(const Probe& p, size_t i) const {
    return &slots_[(p.index + i * p.step) & slot_mask_];
  }

  /// Shared probe loop: returns a pinned slot for `key` or nullptr. When
  /// `touch`, a hit also saturates the slot's clock counter (recency).
  Slot* FindAndRef(const Slice& key, uint64_t hash, bool touch);
  /// Drops one pin. Frees the slot/handle when this was the last pin on an
  /// erased (kInvisible) entry or a standalone handle.
  void ReleaseSlot(Slot* s);
  /// Takes exclusive ownership of an erased zero-ref slot and frees it.
  void TryFreeInvisible(Slot* s);
  /// Frees a slot the caller holds in kConstruction state: runs the
  /// deleter, uncharges, and returns the slot to kEmpty.
  void FreeOwnedSlot(Slot* s);
  /// Advances the clock hand up to `max_scan` slots, evicting unreferenced
  /// entries whose counter reaches zero (or any unreferenced entry when
  /// `ignore_clock`). Stops early once `StillNeeded()` is false. When
  /// `demote`, each reclaimed still-visible entry is offered to the
  /// eviction callback (capacity eviction); Prune passes false
  /// (invalidation, not demotion).
  template <typename StillNeeded>
  void Sweep(size_t max_scan, bool ignore_clock, bool demote,
             StillNeeded still_needed);
  /// Evicts until `usage + incoming <= capacity` or the per-call scan
  /// budget is exhausted (all-pinned tables make this a bounded no-op).
  void EvictToFit(size_t incoming, size_t max_scan);
  /// Flips visible entries matching `key` to kInvisible (erase semantics);
  /// `skip` is excluded.
  void EraseMatching(const Slice& key, uint64_t hash, Slot* skip);

  bool ContainsImpl(const Slice& key);
  void AddUsage(int64_t delta) const;
  int64_t LoadUsage() const;

  size_t num_slots_;
  size_t slot_mask_;
  size_t probe_limit_;
  size_t occupancy_limit_;
  std::unique_ptr<Slot[]> slots_;

  /// Install before traffic (see Cache::SetEvictionCallback). Invoked from
  /// Sweep while the victim slot is held exclusively in kConstruction, so
  /// the plain fields are stable and nothing else can free the entry.
  EvictionCallback eviction_cb_;

  std::atomic<size_t> capacity_;
  /// Free-running clock hand (mod num_slots_).
  mutable std::atomic<uint64_t> clock_pointer_{0};
  mutable std::atomic<size_t> occupancy_{0};

  /// Charge accounting, sharded so concurrent Insert/Release/eviction do
  /// not serialize on one cacheline; GetUsage sums the shards.
  static constexpr size_t kUsageShards = 8;
  struct alignas(64) UsageShard {
    std::atomic<int64_t> value{0};
  };
  mutable UsageShard usage_[kUsageShards];

  mutable util::ShardedCounter hits_;
  mutable util::ShardedCounter misses_;
};

}  // namespace adcache

#endif  // ADCACHE_CACHE_CLOCK_CACHE_H_
