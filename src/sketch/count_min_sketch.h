#ifndef ADCACHE_SKETCH_COUNT_MIN_SKETCH_H_
#define ADCACHE_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "util/slice.h"

namespace adcache {

/// Count-Min sketch with TinyLFU-style saturation decay, used by AdCache's
/// frequency-based point-lookup admission (paper §3.4).
///
/// Counters are 8-bit and saturate at `saturation`. When any counter for a key
/// reaches saturation on Increment, *all* counters and the global sum are
/// halved ("aging"), so consistently hot keys dominate and bursty keys fade.
class CountMinSketch {
 public:
  struct Options {
    /// Number of counters per row. Rounded up to a power of two.
    size_t width = 1 << 14;
    /// Number of hash rows.
    size_t depth = 4;
    /// Counter value that triggers a global halving (paper uses 8).
    uint8_t saturation = 8;
  };

  CountMinSketch();
  explicit CountMinSketch(const Options& options);

  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  /// Records one occurrence of `key`. Returns the new estimate.
  uint32_t Increment(const Slice& key);

  /// Point estimate of the key's frequency (min over rows).
  uint32_t Estimate(const Slice& key) const;

  /// Sum of all increments since construction, decayed alongside the
  /// counters. Used to normalise a key's frequency into a score in [0, 1].
  uint64_t total() const { return total_; }

  /// `Estimate(key) / total()`, the normalised importance score compared
  /// against the admission threshold. Returns 0 when the sketch is empty.
  double NormalizedFrequency(const Slice& key) const;

  /// Number of halving events so far (exposed for tests/telemetry).
  uint64_t decay_count() const { return decay_count_; }

  /// Approximate heap memory used by the sketch in bytes.
  size_t MemoryUsage() const { return depth_ * (mask_ + 1) * sizeof(uint8_t); }

 private:
  void Halve();
  size_t Index(size_t row, const Slice& key) const;

  size_t depth_;
  size_t mask_;  // width - 1
  uint8_t saturation_;
  std::vector<std::vector<uint8_t>> rows_;
  std::vector<uint64_t> seeds_;
  uint64_t total_ = 0;
  uint64_t decay_count_ = 0;
};

}  // namespace adcache

#endif  // ADCACHE_SKETCH_COUNT_MIN_SKETCH_H_
