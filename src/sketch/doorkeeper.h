#ifndef ADCACHE_SKETCH_DOORKEEPER_H_
#define ADCACHE_SKETCH_DOORKEEPER_H_

#include <cstdint>
#include <vector>

#include "util/slice.h"

namespace adcache {

/// A small bloom filter placed in front of the Count-Min sketch (TinyLFU's
/// "doorkeeper"): the very first occurrence of a key only sets bits here, so
/// one-off keys never consume sketch counters. Cleared on every sketch decay.
class Doorkeeper {
 public:
  /// `bits` is rounded up to a power of two; `num_probes` hash functions.
  explicit Doorkeeper(size_t bits = 1 << 16, int num_probes = 3);

  /// Returns true if the key was already present (i.e. this is at least its
  /// second appearance); otherwise inserts it and returns false.
  bool InsertIfAbsent(const Slice& key);

  bool Contains(const Slice& key) const;
  void Clear();

  size_t MemoryUsage() const { return bits_.capacity() / 8; }

 private:
  uint64_t BitFor(int probe, const Slice& key) const;

  size_t mask_;
  int num_probes_;
  std::vector<bool> bits_;
};

}  // namespace adcache

#endif  // ADCACHE_SKETCH_DOORKEEPER_H_
