#include "sketch/count_min_sketch.h"

#include <algorithm>

#include "util/hash.h"

namespace adcache {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch() : CountMinSketch(Options()) {}

CountMinSketch::CountMinSketch(const Options& options)
    : depth_(std::max<size_t>(1, options.depth)),
      mask_(RoundUpPow2(std::max<size_t>(16, options.width)) - 1),
      saturation_(options.saturation) {
  rows_.resize(depth_);
  for (size_t i = 0; i < depth_; i++) {
    rows_[i].assign(mask_ + 1, 0);
    seeds_.push_back(0x9e3779b97f4a7c15ULL * (i + 1) + 0x1234567);
  }
}

size_t CountMinSketch::Index(size_t row, const Slice& key) const {
  return static_cast<size_t>(Hash64(key.data(), key.size(), seeds_[row])) &
         mask_;
}

uint32_t CountMinSketch::Increment(const Slice& key) {
  uint8_t min_after = saturation_;
  bool saturated = false;
  for (size_t row = 0; row < depth_; row++) {
    uint8_t& c = rows_[row][Index(row, key)];
    if (c < saturation_) c++;
    if (c >= saturation_) saturated = true;
    min_after = std::min(min_after, c);
  }
  total_++;
  if (saturated && min_after >= saturation_) {
    Halve();
    return Estimate(key);
  }
  return min_after;
}

uint32_t CountMinSketch::Estimate(const Slice& key) const {
  uint32_t est = UINT32_MAX;
  for (size_t row = 0; row < depth_; row++) {
    est = std::min<uint32_t>(est, rows_[row][Index(row, key)]);
  }
  return est == UINT32_MAX ? 0 : est;
}

double CountMinSketch::NormalizedFrequency(const Slice& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Estimate(key)) / static_cast<double>(total_);
}

void CountMinSketch::Halve() {
  for (auto& row : rows_) {
    for (auto& c : row) c = static_cast<uint8_t>(c >> 1);
  }
  total_ /= 2;
  decay_count_++;
}

}  // namespace adcache
