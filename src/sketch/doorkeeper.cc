#include "sketch/doorkeeper.h"

#include <algorithm>

#include "util/hash.h"

namespace adcache {

namespace {
size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Doorkeeper::Doorkeeper(size_t bits, int num_probes)
    : mask_(RoundUpPow2(std::max<size_t>(64, bits)) - 1),
      num_probes_(std::max(1, num_probes)),
      bits_(mask_ + 1, false) {}

uint64_t Doorkeeper::BitFor(int probe, const Slice& key) const {
  return Hash64(key.data(), key.size(),
                0x51ed270b * static_cast<uint64_t>(probe + 1)) &
         mask_;
}

bool Doorkeeper::InsertIfAbsent(const Slice& key) {
  bool present = true;
  for (int i = 0; i < num_probes_; i++) {
    uint64_t b = BitFor(i, key);
    if (!bits_[b]) {
      present = false;
      bits_[b] = true;
    }
  }
  return present;
}

bool Doorkeeper::Contains(const Slice& key) const {
  for (int i = 0; i < num_probes_; i++) {
    if (!bits_[BitFor(i, key)]) return false;
  }
  return true;
}

void Doorkeeper::Clear() { std::fill(bits_.begin(), bits_.end(), false); }

}  // namespace adcache
