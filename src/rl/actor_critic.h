#ifndef ADCACHE_RL_ACTOR_CRITIC_H_
#define ADCACHE_RL_ACTOR_CRITIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rl/mlp.h"
#include "util/random.h"
#include "util/status.h"

namespace adcache::rl {

/// Configuration for the actor-critic controller. Defaults follow the paper
/// (§4.3, §5.1): two hidden layers of 256 units per network, Adam,
/// actor/critic learning rates of 1e-3.
struct ActorCriticOptions {
  int state_dim = 8;
  int action_dim = 3;
  int hidden_dim = 256;
  float actor_lr = 1e-3f;
  float critic_lr = 1e-3f;
  /// One-step TD discount.
  float gamma = 0.9f;
  /// Std-dev of Gaussian exploration noise around the actor mean (in the
  /// squashed [0,1] action space).
  float exploration_sigma = 0.05f;
  /// Adaptive actor learning rate (paper §3.5): lr *= (1 - reward) each
  /// window, clamped to [min_actor_lr, max_actor_lr].
  bool adaptive_lr = true;
  float min_actor_lr = 1e-5f;
  float max_actor_lr = 1e-2f;
  uint64_t seed = 7;
};

/// Online one-step actor-critic with continuous actions in [0,1]^d.
/// The actor outputs pre-squash means; actions are sigmoid(mean) + Gaussian
/// exploration noise, clipped. The critic estimates V(s); the TD error
/// drives both updates. All compute is plain CPU float32 (paper §4.1).
class ActorCriticAgent {
 public:
  ActorCriticAgent();
  explicit ActorCriticAgent(const ActorCriticOptions& options);

  ActorCriticAgent(const ActorCriticAgent&) = delete;
  ActorCriticAgent& operator=(const ActorCriticAgent&) = delete;

  /// Returns an action in [0,1]^action_dim. With `explore`, Gaussian noise
  /// is added around the policy mean.
  std::vector<float> Act(const std::vector<float>& state, bool explore);

  /// One-step TD update for transition (state, action, reward, next_state).
  /// `action` must be the (possibly noisy) action actually applied.
  void Observe(const std::vector<float>& state,
               const std::vector<float>& action, float reward,
               const std::vector<float>& next_state);

  /// Applies the paper's adaptive learning-rate rule at a window boundary:
  /// lr <- lr * (1 - reward).
  void AdaptLearningRate(float reward);

  /// Supervised pretraining step: regresses the policy mean towards
  /// `target_action` (in [0,1]) for `state`. Returns the MSE loss.
  float PretrainStep(const std::vector<float>& state,
                     const std::vector<float>& target_action);

  float actor_lr() const { return actor_lr_; }
  float EstimateValue(const std::vector<float>& state);

  /// Memory accounting for the paper's Table 2.
  struct MemoryFootprint {
    size_t parameter_count;
    size_t parameter_bytes;
    size_t optimizer_bytes;  // Adam moments + gradient buffers
    size_t total_bytes;
  };
  MemoryFootprint GetMemoryFootprint() const;

  void Save(std::string* dst) const;
  Status Load(const Slice& input);

  const ActorCriticOptions& options() const { return options_; }

 private:
  std::vector<float> PolicyMean(const std::vector<float>& state);

  ActorCriticOptions options_;
  std::unique_ptr<Mlp> actor_;
  std::unique_ptr<Mlp> critic_;
  float actor_lr_;
  Random rng_;
};

}  // namespace adcache::rl

#endif  // ADCACHE_RL_ACTOR_CRITIC_H_
