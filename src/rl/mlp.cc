#include "rl/mlp.h"

#include <cassert>
#include <cmath>

#include "util/coding.h"

namespace adcache::rl {

Mlp::Mlp(const std::vector<int>& layer_sizes, uint64_t seed)
    : layer_sizes_(layer_sizes), rng_(seed) {
  assert(layer_sizes.size() >= 2);
  for (size_t i = 0; i + 1 < layer_sizes.size(); i++) {
    Layer layer;
    layer.in = layer_sizes[i];
    layer.out = layer_sizes[i + 1];
    size_t n = static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.w.resize(n);
    // He initialisation for the ReLU stack.
    float scale = std::sqrt(2.0f / static_cast<float>(layer.in));
    for (auto& w : layer.w) {
      // Approximate normal via sum of uniforms (Irwin-Hall, k=4).
      float u = 0;
      for (int k = 0; k < 4; k++) {
        u += static_cast<float>(rng_.NextDouble()) - 0.5f;
      }
      w = u * scale;
    }
    layer.b.assign(static_cast<size_t>(layer.out), 0.0f);
    layer.gw.assign(n, 0.0f);
    layer.gb.assign(static_cast<size_t>(layer.out), 0.0f);
    layer.mw.assign(n, 0.0f);
    layer.vw.assign(n, 0.0f);
    layer.mb.assign(static_cast<size_t>(layer.out), 0.0f);
    layer.vb.assign(static_cast<size_t>(layer.out), 0.0f);
    layers_.push_back(std::move(layer));
  }
}

std::vector<float> Mlp::Forward(const std::vector<float>& input) {
  assert(static_cast<int>(input.size()) == layer_sizes_.front());
  std::vector<float> x = input;
  for (size_t li = 0; li < layers_.size(); li++) {
    Layer& layer = layers_[li];
    layer.input = x;
    std::vector<float> z(static_cast<size_t>(layer.out));
    for (int o = 0; o < layer.out; o++) {
      float acc = layer.b[static_cast<size_t>(o)];
      const float* wrow =
          layer.w.data() + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; i++) {
        acc += wrow[i] * x[static_cast<size_t>(i)];
      }
      z[static_cast<size_t>(o)] = acc;
    }
    layer.pre_activation = z;
    const bool last = (li + 1 == layers_.size());
    if (!last) {
      for (auto& v : z) v = v > 0 ? v : 0;  // ReLU
    }
    x = std::move(z);
  }
  return x;
}

std::vector<float> Mlp::Backward(const std::vector<float>& grad_output) {
  std::vector<float> grad = grad_output;
  for (size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const bool last = (li + 1 == layers_.size());
    if (!last) {
      // ReLU derivative on the pre-activation.
      for (int o = 0; o < layer.out; o++) {
        if (layer.pre_activation[static_cast<size_t>(o)] <= 0) {
          grad[static_cast<size_t>(o)] = 0;
        }
      }
    }
    std::vector<float> grad_in(static_cast<size_t>(layer.in), 0.0f);
    for (int o = 0; o < layer.out; o++) {
      float g = grad[static_cast<size_t>(o)];
      layer.gb[static_cast<size_t>(o)] += g;
      float* gw_row = layer.gw.data() + static_cast<size_t>(o) * layer.in;
      const float* w_row = layer.w.data() + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; i++) {
        gw_row[i] += g * layer.input[static_cast<size_t>(i)];
        grad_in[static_cast<size_t>(i)] += g * w_row[i];
      }
    }
    grad = std::move(grad_in);
  }
  return grad;
}

void Mlp::AdamStep(float lr) {
  constexpr float kBeta1 = 0.9f;
  constexpr float kBeta2 = 0.999f;
  constexpr float kEps = 1e-8f;
  adam_t_++;
  float t = static_cast<float>(adam_t_);
  float bias1 = 1.0f - std::pow(kBeta1, t);
  float bias2 = 1.0f - std::pow(kBeta2, t);
  auto update = [&](std::vector<float>& p, std::vector<float>& g,
                    std::vector<float>& m, std::vector<float>& v) {
    for (size_t i = 0; i < p.size(); i++) {
      m[i] = kBeta1 * m[i] + (1 - kBeta1) * g[i];
      v[i] = kBeta2 * v[i] + (1 - kBeta2) * g[i] * g[i];
      float mhat = m[i] / bias1;
      float vhat = v[i] / bias2;
      p[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
      g[i] = 0;
    }
  };
  for (auto& layer : layers_) {
    update(layer.w, layer.gw, layer.mw, layer.vw);
    update(layer.b, layer.gb, layer.mb, layer.vb);
  }
}

size_t Mlp::ParameterCount() const {
  size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.w.size() + layer.b.size();
  }
  return total;
}

void Mlp::Save(std::string* dst) const {
  PutFixed32(dst, static_cast<uint32_t>(layer_sizes_.size()));
  for (int s : layer_sizes_) PutFixed32(dst, static_cast<uint32_t>(s));
  for (const auto& layer : layers_) {
    for (float w : layer.w) {
      uint32_t bits;
      memcpy(&bits, &w, sizeof(bits));
      PutFixed32(dst, bits);
    }
    for (float b : layer.b) {
      uint32_t bits;
      memcpy(&bits, &b, sizeof(bits));
      PutFixed32(dst, bits);
    }
  }
}

Status Mlp::Load(Slice input) {
  if (input.size() < 4) return Status::Corruption("mlp: short header");
  uint32_t n = DecodeFixed32(input.data());
  input.remove_prefix(4);
  if (n != layer_sizes_.size() || input.size() < 4 * n) {
    return Status::InvalidArgument("mlp: architecture mismatch");
  }
  for (size_t i = 0; i < n; i++) {
    if (DecodeFixed32(input.data()) !=
        static_cast<uint32_t>(layer_sizes_[i])) {
      return Status::InvalidArgument("mlp: layer size mismatch");
    }
    input.remove_prefix(4);
  }
  for (auto& layer : layers_) {
    size_t need = (layer.w.size() + layer.b.size()) * 4;
    if (input.size() < need) return Status::Corruption("mlp: short weights");
    for (float& w : layer.w) {
      uint32_t bits = DecodeFixed32(input.data());
      memcpy(&w, &bits, sizeof(w));
      input.remove_prefix(4);
    }
    for (float& b : layer.b) {
      uint32_t bits = DecodeFixed32(input.data());
      memcpy(&b, &bits, sizeof(b));
      input.remove_prefix(4);
    }
  }
  return Status::OK();
}

}  // namespace adcache::rl
