#ifndef ADCACHE_RL_MLP_H_
#define ADCACHE_RL_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::rl {

/// A small fully connected network with ReLU hidden activations and a linear
/// output, trained one sample at a time with Adam — deliberately
/// dependency-free so it can live inside a storage engine (paper §4.1).
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; must have >= 2 entries.
  Mlp(const std::vector<int>& layer_sizes, uint64_t seed);

  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;

  /// Forward pass; caches activations for a subsequent Backward.
  std::vector<float> Forward(const std::vector<float>& input);

  /// Backpropagates dL/d(output), accumulating parameter gradients.
  /// Requires a preceding Forward. Returns dL/d(input).
  std::vector<float> Backward(const std::vector<float>& grad_output);

  /// Applies one Adam update with the accumulated gradients, then clears
  /// them.
  void AdamStep(float lr);

  /// Total number of scalar parameters (weights + biases).
  size_t ParameterCount() const;
  /// Bytes for parameters only (float32).
  size_t ParameterBytes() const { return ParameterCount() * sizeof(float); }
  /// Bytes for Adam moments + gradient buffers (training-time extra).
  size_t OptimizerBytes() const { return 3 * ParameterBytes(); }

  /// Binary serialisation of architecture + weights.
  void Save(std::string* dst) const;
  Status Load(Slice input);

  const std::vector<int>& layer_sizes() const { return layer_sizes_; }

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<float> w;       // out x in, row-major
    std::vector<float> b;       // out
    std::vector<float> gw, gb;  // gradients
    std::vector<float> mw, vw, mb, vb;  // Adam moments
    // Cached forward state.
    std::vector<float> input;
    std::vector<float> pre_activation;
  };

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
  uint64_t adam_t_ = 0;
  Random rng_;
};

}  // namespace adcache::rl

#endif  // ADCACHE_RL_MLP_H_
