#include "rl/actor_critic.h"

#include <algorithm>
#include <cmath>

#include "util/coding.h"

namespace adcache::rl {

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float Clip01(float x) { return std::clamp(x, 0.0f, 1.0f); }

}  // namespace

ActorCriticAgent::ActorCriticAgent()
    : ActorCriticAgent(ActorCriticOptions()) {}

ActorCriticAgent::ActorCriticAgent(const ActorCriticOptions& options)
    : options_(options), actor_lr_(options.actor_lr), rng_(options.seed) {
  std::vector<int> actor_sizes = {options.state_dim, options.hidden_dim,
                                  options.hidden_dim, options.action_dim};
  std::vector<int> critic_sizes = {options.state_dim, options.hidden_dim,
                                   options.hidden_dim, 1};
  actor_ = std::make_unique<Mlp>(actor_sizes, options.seed * 2 + 1);
  critic_ = std::make_unique<Mlp>(critic_sizes, options.seed * 3 + 2);
}

std::vector<float> ActorCriticAgent::PolicyMean(
    const std::vector<float>& state) {
  std::vector<float> out = actor_->Forward(state);
  for (auto& v : out) v = Sigmoid(v);
  return out;
}

std::vector<float> ActorCriticAgent::Act(const std::vector<float>& state,
                                         bool explore) {
  std::vector<float> mean = PolicyMean(state);
  if (explore) {
    for (auto& v : mean) {
      // Box-Muller Gaussian noise.
      double u1 = std::max(1e-12, rng_.NextDouble());
      double u2 = rng_.NextDouble();
      float n = static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                                   std::cos(2.0 * M_PI * u2));
      v = Clip01(v + options_.exploration_sigma * n);
    }
  }
  return mean;
}

float ActorCriticAgent::EstimateValue(const std::vector<float>& state) {
  return critic_->Forward(state)[0];
}

void ActorCriticAgent::Observe(const std::vector<float>& state,
                               const std::vector<float>& action, float reward,
                               const std::vector<float>& next_state) {
  // One-step TD error: delta = r + gamma * V(s') - V(s).
  float v_next = critic_->Forward(next_state)[0];
  float v = critic_->Forward(state)[0];  // also caches activations for bwd
  float delta = reward + options_.gamma * v_next - v;

  // Critic: minimise 0.5 * delta^2 w.r.t. V(s) -> dL/dV = -delta.
  critic_->Backward({-delta});
  critic_->AdamStep(options_.critic_lr);

  // Actor: Gaussian policy with mean sigmoid(f(s)) and fixed sigma.
  // grad log pi w.r.t. mean = (a - mean) / sigma^2; scale by the TD error
  // (advantage estimate) and backprop through the sigmoid.
  std::vector<float> pre = actor_->Forward(state);
  const float sigma2 =
      options_.exploration_sigma * options_.exploration_sigma + 1e-6f;
  std::vector<float> grad(pre.size());
  for (size_t i = 0; i < pre.size(); i++) {
    float mean = Sigmoid(pre[i]);
    float dmean = (action[i] - mean) / sigma2 * delta;
    // Gradient ascent on expected return == descent on -J.
    grad[i] = -dmean * mean * (1 - mean);
  }
  actor_->Backward(grad);
  actor_->AdamStep(actor_lr_);
}

void ActorCriticAgent::AdaptLearningRate(float reward) {
  if (!options_.adaptive_lr) return;
  actor_lr_ *= (1.0f - reward);
  actor_lr_ =
      std::clamp(actor_lr_, options_.min_actor_lr, options_.max_actor_lr);
}

float ActorCriticAgent::PretrainStep(const std::vector<float>& state,
                                     const std::vector<float>& target_action) {
  std::vector<float> pre = actor_->Forward(state);
  std::vector<float> grad(pre.size());
  float loss = 0;
  for (size_t i = 0; i < pre.size(); i++) {
    float mean = Sigmoid(pre[i]);
    float err = mean - target_action[i];
    loss += err * err;
    grad[i] = 2 * err * mean * (1 - mean);
  }
  actor_->Backward(grad);
  actor_->AdamStep(options_.actor_lr);
  return loss / static_cast<float>(pre.size());
}

ActorCriticAgent::MemoryFootprint ActorCriticAgent::GetMemoryFootprint()
    const {
  MemoryFootprint fp;
  fp.parameter_count = actor_->ParameterCount() + critic_->ParameterCount();
  fp.parameter_bytes = actor_->ParameterBytes() + critic_->ParameterBytes();
  fp.optimizer_bytes = actor_->OptimizerBytes() + critic_->OptimizerBytes();
  fp.total_bytes = fp.parameter_bytes + fp.optimizer_bytes;
  return fp;
}

void ActorCriticAgent::Save(std::string* dst) const {
  std::string actor_blob, critic_blob;
  actor_->Save(&actor_blob);
  critic_->Save(&critic_blob);
  PutFixed32(dst, static_cast<uint32_t>(actor_blob.size()));
  dst->append(actor_blob);
  PutFixed32(dst, static_cast<uint32_t>(critic_blob.size()));
  dst->append(critic_blob);
}

Status ActorCriticAgent::Load(const Slice& input) {
  Slice in = input;
  if (in.size() < 4) return Status::Corruption("agent: short blob");
  uint32_t actor_len = DecodeFixed32(in.data());
  in.remove_prefix(4);
  if (in.size() < actor_len) return Status::Corruption("agent: short actor");
  Status s = actor_->Load(Slice(in.data(), actor_len));
  if (!s.ok()) return s;
  in.remove_prefix(actor_len);
  if (in.size() < 4) return Status::Corruption("agent: short blob");
  uint32_t critic_len = DecodeFixed32(in.data());
  in.remove_prefix(4);
  if (in.size() < critic_len) return Status::Corruption("agent: short critic");
  return critic_->Load(Slice(in.data(), critic_len));
}

}  // namespace adcache::rl
