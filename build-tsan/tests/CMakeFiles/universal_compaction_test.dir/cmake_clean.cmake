file(REMOVE_RECURSE
  "CMakeFiles/universal_compaction_test.dir/universal_compaction_test.cc.o"
  "CMakeFiles/universal_compaction_test.dir/universal_compaction_test.cc.o.d"
  "universal_compaction_test"
  "universal_compaction_test.pdb"
  "universal_compaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
