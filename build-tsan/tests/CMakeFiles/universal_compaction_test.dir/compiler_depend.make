# Empty compiler generated dependencies file for universal_compaction_test.
# This may be replaced when dependencies are built.
