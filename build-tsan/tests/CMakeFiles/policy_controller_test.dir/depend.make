# Empty dependencies file for policy_controller_test.
# This may be replaced when dependencies are built.
