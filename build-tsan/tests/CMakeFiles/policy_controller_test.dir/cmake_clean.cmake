file(REMOVE_RECURSE
  "CMakeFiles/policy_controller_test.dir/policy_controller_test.cc.o"
  "CMakeFiles/policy_controller_test.dir/policy_controller_test.cc.o.d"
  "policy_controller_test"
  "policy_controller_test.pdb"
  "policy_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
