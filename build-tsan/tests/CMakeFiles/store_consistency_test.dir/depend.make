# Empty dependencies file for store_consistency_test.
# This may be replaced when dependencies are built.
