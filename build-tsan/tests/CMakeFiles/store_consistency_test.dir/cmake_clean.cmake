file(REMOVE_RECURSE
  "CMakeFiles/store_consistency_test.dir/store_consistency_test.cc.o"
  "CMakeFiles/store_consistency_test.dir/store_consistency_test.cc.o.d"
  "store_consistency_test"
  "store_consistency_test.pdb"
  "store_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
