file(REMOVE_RECURSE
  "CMakeFiles/adcache_store_test.dir/adcache_store_test.cc.o"
  "CMakeFiles/adcache_store_test.dir/adcache_store_test.cc.o.d"
  "adcache_store_test"
  "adcache_store_test.pdb"
  "adcache_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
