# Empty compiler generated dependencies file for adcache_store_test.
# This may be replaced when dependencies are built.
