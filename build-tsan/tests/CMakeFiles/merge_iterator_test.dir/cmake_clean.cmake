file(REMOVE_RECURSE
  "CMakeFiles/merge_iterator_test.dir/merge_iterator_test.cc.o"
  "CMakeFiles/merge_iterator_test.dir/merge_iterator_test.cc.o.d"
  "merge_iterator_test"
  "merge_iterator_test.pdb"
  "merge_iterator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
