file(REMOVE_RECURSE
  "CMakeFiles/io_estimator_test.dir/io_estimator_test.cc.o"
  "CMakeFiles/io_estimator_test.dir/io_estimator_test.cc.o.d"
  "io_estimator_test"
  "io_estimator_test.pdb"
  "io_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
