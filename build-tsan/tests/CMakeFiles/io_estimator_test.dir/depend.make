# Empty dependencies file for io_estimator_test.
# This may be replaced when dependencies are built.
