file(REMOVE_RECURSE
  "CMakeFiles/range_cache_property_test.dir/range_cache_property_test.cc.o"
  "CMakeFiles/range_cache_property_test.dir/range_cache_property_test.cc.o.d"
  "range_cache_property_test"
  "range_cache_property_test.pdb"
  "range_cache_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_cache_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
