# Empty dependencies file for range_cache_property_test.
# This may be replaced when dependencies are built.
