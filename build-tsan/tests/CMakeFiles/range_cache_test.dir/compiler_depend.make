# Empty compiler generated dependencies file for range_cache_test.
# This may be replaced when dependencies are built.
