# Empty dependencies file for leaper_prefetch_test.
# This may be replaced when dependencies are built.
