file(REMOVE_RECURSE
  "CMakeFiles/leaper_prefetch_test.dir/leaper_prefetch_test.cc.o"
  "CMakeFiles/leaper_prefetch_test.dir/leaper_prefetch_test.cc.o.d"
  "leaper_prefetch_test"
  "leaper_prefetch_test.pdb"
  "leaper_prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaper_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
