file(REMOVE_RECURSE
  "CMakeFiles/clock_arc_policy_test.dir/clock_arc_policy_test.cc.o"
  "CMakeFiles/clock_arc_policy_test.dir/clock_arc_policy_test.cc.o.d"
  "clock_arc_policy_test"
  "clock_arc_policy_test.pdb"
  "clock_arc_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_arc_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
