# Empty dependencies file for clock_arc_policy_test.
# This may be replaced when dependencies are built.
