# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clock_arc_policy_test.
