# Empty dependencies file for background_maintenance_test.
# This may be replaced when dependencies are built.
