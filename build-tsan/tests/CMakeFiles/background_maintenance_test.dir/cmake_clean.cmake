file(REMOVE_RECURSE
  "CMakeFiles/background_maintenance_test.dir/background_maintenance_test.cc.o"
  "CMakeFiles/background_maintenance_test.dir/background_maintenance_test.cc.o.d"
  "background_maintenance_test"
  "background_maintenance_test.pdb"
  "background_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
