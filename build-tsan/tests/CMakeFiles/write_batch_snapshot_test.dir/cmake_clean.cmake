file(REMOVE_RECURSE
  "CMakeFiles/write_batch_snapshot_test.dir/write_batch_snapshot_test.cc.o"
  "CMakeFiles/write_batch_snapshot_test.dir/write_batch_snapshot_test.cc.o.d"
  "write_batch_snapshot_test"
  "write_batch_snapshot_test.pdb"
  "write_batch_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_batch_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
