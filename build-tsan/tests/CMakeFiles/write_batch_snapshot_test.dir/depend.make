# Empty dependencies file for write_batch_snapshot_test.
# This may be replaced when dependencies are built.
