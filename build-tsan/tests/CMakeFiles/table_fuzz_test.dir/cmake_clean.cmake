file(REMOVE_RECURSE
  "CMakeFiles/table_fuzz_test.dir/table_fuzz_test.cc.o"
  "CMakeFiles/table_fuzz_test.dir/table_fuzz_test.cc.o.d"
  "table_fuzz_test"
  "table_fuzz_test.pdb"
  "table_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
