# Empty compiler generated dependencies file for table_fuzz_test.
# This may be replaced when dependencies are built.
