file(REMOVE_RECURSE
  "CMakeFiles/eviction_policy_test.dir/eviction_policy_test.cc.o"
  "CMakeFiles/eviction_policy_test.dir/eviction_policy_test.cc.o.d"
  "eviction_policy_test"
  "eviction_policy_test.pdb"
  "eviction_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
