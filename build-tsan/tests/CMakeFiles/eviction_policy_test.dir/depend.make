# Empty dependencies file for eviction_policy_test.
# This may be replaced when dependencies are built.
