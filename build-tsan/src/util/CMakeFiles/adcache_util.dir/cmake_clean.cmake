file(REMOVE_RECURSE
  "CMakeFiles/adcache_util.dir/arena.cc.o"
  "CMakeFiles/adcache_util.dir/arena.cc.o.d"
  "CMakeFiles/adcache_util.dir/clock.cc.o"
  "CMakeFiles/adcache_util.dir/clock.cc.o.d"
  "CMakeFiles/adcache_util.dir/coding.cc.o"
  "CMakeFiles/adcache_util.dir/coding.cc.o.d"
  "CMakeFiles/adcache_util.dir/env.cc.o"
  "CMakeFiles/adcache_util.dir/env.cc.o.d"
  "CMakeFiles/adcache_util.dir/fault_injection_env.cc.o"
  "CMakeFiles/adcache_util.dir/fault_injection_env.cc.o.d"
  "CMakeFiles/adcache_util.dir/hash.cc.o"
  "CMakeFiles/adcache_util.dir/hash.cc.o.d"
  "CMakeFiles/adcache_util.dir/histogram.cc.o"
  "CMakeFiles/adcache_util.dir/histogram.cc.o.d"
  "CMakeFiles/adcache_util.dir/status.cc.o"
  "CMakeFiles/adcache_util.dir/status.cc.o.d"
  "CMakeFiles/adcache_util.dir/thread_pool.cc.o"
  "CMakeFiles/adcache_util.dir/thread_pool.cc.o.d"
  "libadcache_util.a"
  "libadcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
