
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/adcache_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/arena.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/util/CMakeFiles/adcache_util.dir/clock.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/clock.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/util/CMakeFiles/adcache_util.dir/coding.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/coding.cc.o.d"
  "/root/repo/src/util/env.cc" "src/util/CMakeFiles/adcache_util.dir/env.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/env.cc.o.d"
  "/root/repo/src/util/fault_injection_env.cc" "src/util/CMakeFiles/adcache_util.dir/fault_injection_env.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/fault_injection_env.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/util/CMakeFiles/adcache_util.dir/hash.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/adcache_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/adcache_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/adcache_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/adcache_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
