file(REMOVE_RECURSE
  "libadcache_util.a"
)
