# Empty dependencies file for adcache_util.
# This may be replaced when dependencies are built.
