file(REMOVE_RECURSE
  "CMakeFiles/adcache_cache.dir/arc_policy.cc.o"
  "CMakeFiles/adcache_cache.dir/arc_policy.cc.o.d"
  "CMakeFiles/adcache_cache.dir/cacheus.cc.o"
  "CMakeFiles/adcache_cache.dir/cacheus.cc.o.d"
  "CMakeFiles/adcache_cache.dir/clock_policy.cc.o"
  "CMakeFiles/adcache_cache.dir/clock_policy.cc.o.d"
  "CMakeFiles/adcache_cache.dir/eviction_policy.cc.o"
  "CMakeFiles/adcache_cache.dir/eviction_policy.cc.o.d"
  "CMakeFiles/adcache_cache.dir/kv_cache.cc.o"
  "CMakeFiles/adcache_cache.dir/kv_cache.cc.o.d"
  "CMakeFiles/adcache_cache.dir/lecar.cc.o"
  "CMakeFiles/adcache_cache.dir/lecar.cc.o.d"
  "CMakeFiles/adcache_cache.dir/lru_cache.cc.o"
  "CMakeFiles/adcache_cache.dir/lru_cache.cc.o.d"
  "CMakeFiles/adcache_cache.dir/range_cache.cc.o"
  "CMakeFiles/adcache_cache.dir/range_cache.cc.o.d"
  "libadcache_cache.a"
  "libadcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
