file(REMOVE_RECURSE
  "libadcache_cache.a"
)
