# Empty dependencies file for adcache_cache.
# This may be replaced when dependencies are built.
