
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/arc_policy.cc" "src/cache/CMakeFiles/adcache_cache.dir/arc_policy.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/arc_policy.cc.o.d"
  "/root/repo/src/cache/cacheus.cc" "src/cache/CMakeFiles/adcache_cache.dir/cacheus.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/cacheus.cc.o.d"
  "/root/repo/src/cache/clock_policy.cc" "src/cache/CMakeFiles/adcache_cache.dir/clock_policy.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/clock_policy.cc.o.d"
  "/root/repo/src/cache/eviction_policy.cc" "src/cache/CMakeFiles/adcache_cache.dir/eviction_policy.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/eviction_policy.cc.o.d"
  "/root/repo/src/cache/kv_cache.cc" "src/cache/CMakeFiles/adcache_cache.dir/kv_cache.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/kv_cache.cc.o.d"
  "/root/repo/src/cache/lecar.cc" "src/cache/CMakeFiles/adcache_cache.dir/lecar.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/lecar.cc.o.d"
  "/root/repo/src/cache/lru_cache.cc" "src/cache/CMakeFiles/adcache_cache.dir/lru_cache.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/lru_cache.cc.o.d"
  "/root/repo/src/cache/range_cache.cc" "src/cache/CMakeFiles/adcache_cache.dir/range_cache.cc.o" "gcc" "src/cache/CMakeFiles/adcache_cache.dir/range_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/adcache_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
