file(REMOVE_RECURSE
  "CMakeFiles/adcache_core.dir/adcache_store.cc.o"
  "CMakeFiles/adcache_core.dir/adcache_store.cc.o.d"
  "CMakeFiles/adcache_core.dir/admission.cc.o"
  "CMakeFiles/adcache_core.dir/admission.cc.o.d"
  "CMakeFiles/adcache_core.dir/baseline_stores.cc.o"
  "CMakeFiles/adcache_core.dir/baseline_stores.cc.o.d"
  "CMakeFiles/adcache_core.dir/dynamic_cache.cc.o"
  "CMakeFiles/adcache_core.dir/dynamic_cache.cc.o.d"
  "CMakeFiles/adcache_core.dir/policy_controller.cc.o"
  "CMakeFiles/adcache_core.dir/policy_controller.cc.o.d"
  "CMakeFiles/adcache_core.dir/stats_collector.cc.o"
  "CMakeFiles/adcache_core.dir/stats_collector.cc.o.d"
  "CMakeFiles/adcache_core.dir/strategy.cc.o"
  "CMakeFiles/adcache_core.dir/strategy.cc.o.d"
  "libadcache_core.a"
  "libadcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
