
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adcache_store.cc" "src/core/CMakeFiles/adcache_core.dir/adcache_store.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/adcache_store.cc.o.d"
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/adcache_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/admission.cc.o.d"
  "/root/repo/src/core/baseline_stores.cc" "src/core/CMakeFiles/adcache_core.dir/baseline_stores.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/baseline_stores.cc.o.d"
  "/root/repo/src/core/dynamic_cache.cc" "src/core/CMakeFiles/adcache_core.dir/dynamic_cache.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/dynamic_cache.cc.o.d"
  "/root/repo/src/core/policy_controller.cc" "src/core/CMakeFiles/adcache_core.dir/policy_controller.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/policy_controller.cc.o.d"
  "/root/repo/src/core/stats_collector.cc" "src/core/CMakeFiles/adcache_core.dir/stats_collector.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/stats_collector.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/core/CMakeFiles/adcache_core.dir/strategy.cc.o" "gcc" "src/core/CMakeFiles/adcache_core.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/adcache_sketch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/adcache_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lsm/CMakeFiles/adcache_lsm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rl/CMakeFiles/adcache_rl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
