# Empty dependencies file for adcache_core.
# This may be replaced when dependencies are built.
