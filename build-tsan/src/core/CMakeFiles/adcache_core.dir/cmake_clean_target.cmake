file(REMOVE_RECURSE
  "libadcache_core.a"
)
