file(REMOVE_RECURSE
  "CMakeFiles/adcache_lsm.dir/block.cc.o"
  "CMakeFiles/adcache_lsm.dir/block.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/block_builder.cc.o"
  "CMakeFiles/adcache_lsm.dir/block_builder.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/bloom.cc.o"
  "CMakeFiles/adcache_lsm.dir/bloom.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/db.cc.o"
  "CMakeFiles/adcache_lsm.dir/db.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/dbformat.cc.o"
  "CMakeFiles/adcache_lsm.dir/dbformat.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/log_writer.cc.o"
  "CMakeFiles/adcache_lsm.dir/log_writer.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/memtable.cc.o"
  "CMakeFiles/adcache_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/table.cc.o"
  "CMakeFiles/adcache_lsm.dir/table.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/table_builder.cc.o"
  "CMakeFiles/adcache_lsm.dir/table_builder.cc.o.d"
  "CMakeFiles/adcache_lsm.dir/version.cc.o"
  "CMakeFiles/adcache_lsm.dir/version.cc.o.d"
  "libadcache_lsm.a"
  "libadcache_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
