
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/block.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/block.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/block.cc.o.d"
  "/root/repo/src/lsm/block_builder.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/block_builder.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/block_builder.cc.o.d"
  "/root/repo/src/lsm/bloom.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/bloom.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/bloom.cc.o.d"
  "/root/repo/src/lsm/db.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/db.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/db.cc.o.d"
  "/root/repo/src/lsm/dbformat.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/dbformat.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/dbformat.cc.o.d"
  "/root/repo/src/lsm/log_writer.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/log_writer.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/log_writer.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/table.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/table.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/table.cc.o.d"
  "/root/repo/src/lsm/table_builder.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/table_builder.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/table_builder.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/lsm/CMakeFiles/adcache_lsm.dir/version.cc.o" "gcc" "src/lsm/CMakeFiles/adcache_lsm.dir/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/adcache_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sketch/CMakeFiles/adcache_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
