# Empty dependencies file for adcache_lsm.
# This may be replaced when dependencies are built.
