file(REMOVE_RECURSE
  "libadcache_lsm.a"
)
