file(REMOVE_RECURSE
  "CMakeFiles/adcache_rl.dir/actor_critic.cc.o"
  "CMakeFiles/adcache_rl.dir/actor_critic.cc.o.d"
  "CMakeFiles/adcache_rl.dir/mlp.cc.o"
  "CMakeFiles/adcache_rl.dir/mlp.cc.o.d"
  "libadcache_rl.a"
  "libadcache_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
