file(REMOVE_RECURSE
  "libadcache_rl.a"
)
