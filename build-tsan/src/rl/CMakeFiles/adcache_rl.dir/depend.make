# Empty dependencies file for adcache_rl.
# This may be replaced when dependencies are built.
