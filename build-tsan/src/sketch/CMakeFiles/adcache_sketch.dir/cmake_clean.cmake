file(REMOVE_RECURSE
  "CMakeFiles/adcache_sketch.dir/count_min_sketch.cc.o"
  "CMakeFiles/adcache_sketch.dir/count_min_sketch.cc.o.d"
  "CMakeFiles/adcache_sketch.dir/doorkeeper.cc.o"
  "CMakeFiles/adcache_sketch.dir/doorkeeper.cc.o.d"
  "libadcache_sketch.a"
  "libadcache_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
