# Empty dependencies file for adcache_sketch.
# This may be replaced when dependencies are built.
