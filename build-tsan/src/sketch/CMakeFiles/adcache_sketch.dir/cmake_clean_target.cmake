file(REMOVE_RECURSE
  "libadcache_sketch.a"
)
