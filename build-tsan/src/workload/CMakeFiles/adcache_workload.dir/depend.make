# Empty dependencies file for adcache_workload.
# This may be replaced when dependencies are built.
