file(REMOVE_RECURSE
  "CMakeFiles/adcache_workload.dir/generator.cc.o"
  "CMakeFiles/adcache_workload.dir/generator.cc.o.d"
  "CMakeFiles/adcache_workload.dir/runner.cc.o"
  "CMakeFiles/adcache_workload.dir/runner.cc.o.d"
  "CMakeFiles/adcache_workload.dir/zipfian.cc.o"
  "CMakeFiles/adcache_workload.dir/zipfian.cc.o.d"
  "libadcache_workload.a"
  "libadcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
