file(REMOVE_RECURSE
  "libadcache_workload.a"
)
