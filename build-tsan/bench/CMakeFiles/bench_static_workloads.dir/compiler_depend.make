# Empty compiler generated dependencies file for bench_static_workloads.
# This may be replaced when dependencies are built.
