file(REMOVE_RECURSE
  "CMakeFiles/bench_static_workloads.dir/bench_static_workloads.cc.o"
  "CMakeFiles/bench_static_workloads.dir/bench_static_workloads.cc.o.d"
  "bench_static_workloads"
  "bench_static_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
