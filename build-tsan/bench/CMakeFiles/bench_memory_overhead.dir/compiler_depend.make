# Empty compiler generated dependencies file for bench_memory_overhead.
# This may be replaced when dependencies are built.
