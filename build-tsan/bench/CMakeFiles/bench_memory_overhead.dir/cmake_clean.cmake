file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_overhead.dir/bench_memory_overhead.cc.o"
  "CMakeFiles/bench_memory_overhead.dir/bench_memory_overhead.cc.o.d"
  "bench_memory_overhead"
  "bench_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
