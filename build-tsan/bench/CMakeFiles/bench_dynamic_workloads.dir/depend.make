# Empty dependencies file for bench_dynamic_workloads.
# This may be replaced when dependencies are built.
