file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_workloads.dir/bench_dynamic_workloads.cc.o"
  "CMakeFiles/bench_dynamic_workloads.dir/bench_dynamic_workloads.cc.o.d"
  "bench_dynamic_workloads"
  "bench_dynamic_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
