file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_eviction.dir/bench_scan_eviction.cc.o"
  "CMakeFiles/bench_scan_eviction.dir/bench_scan_eviction.cc.o.d"
  "bench_scan_eviction"
  "bench_scan_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
