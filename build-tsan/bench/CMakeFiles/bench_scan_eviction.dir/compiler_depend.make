# Empty compiler generated dependencies file for bench_scan_eviction.
# This may be replaced when dependencies are built.
