# Empty compiler generated dependencies file for bench_leaper.
# This may be replaced when dependencies are built.
