file(REMOVE_RECURSE
  "CMakeFiles/bench_leaper.dir/bench_leaper.cc.o"
  "CMakeFiles/bench_leaper.dir/bench_leaper.cc.o.d"
  "bench_leaper"
  "bench_leaper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leaper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
