file(REMOVE_RECURSE
  "CMakeFiles/bench_training_params.dir/bench_training_params.cc.o"
  "CMakeFiles/bench_training_params.dir/bench_training_params.cc.o.d"
  "bench_training_params"
  "bench_training_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
