# Empty dependencies file for bench_training_params.
# This may be replaced when dependencies are built.
