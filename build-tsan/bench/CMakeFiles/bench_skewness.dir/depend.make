# Empty dependencies file for bench_skewness.
# This may be replaced when dependencies are built.
