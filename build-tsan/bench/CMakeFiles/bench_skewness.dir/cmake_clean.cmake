file(REMOVE_RECURSE
  "CMakeFiles/bench_skewness.dir/bench_skewness.cc.o"
  "CMakeFiles/bench_skewness.dir/bench_skewness.cc.o.d"
  "bench_skewness"
  "bench_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
