# Empty compiler generated dependencies file for recommender_serving.
# This may be replaced when dependencies are built.
