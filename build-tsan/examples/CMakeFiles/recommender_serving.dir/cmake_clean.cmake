file(REMOVE_RECURSE
  "CMakeFiles/recommender_serving.dir/recommender_serving.cpp.o"
  "CMakeFiles/recommender_serving.dir/recommender_serving.cpp.o.d"
  "recommender_serving"
  "recommender_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
