# Empty compiler generated dependencies file for adcache_db_bench.
# This may be replaced when dependencies are built.
