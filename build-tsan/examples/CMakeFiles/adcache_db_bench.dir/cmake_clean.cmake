file(REMOVE_RECURSE
  "CMakeFiles/adcache_db_bench.dir/adcache_db_bench.cpp.o"
  "CMakeFiles/adcache_db_bench.dir/adcache_db_bench.cpp.o.d"
  "adcache_db_bench"
  "adcache_db_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_db_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
