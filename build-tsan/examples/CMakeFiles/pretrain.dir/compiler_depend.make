# Empty compiler generated dependencies file for pretrain.
# This may be replaced when dependencies are built.
