file(REMOVE_RECURSE
  "CMakeFiles/pretrain.dir/pretrain.cpp.o"
  "CMakeFiles/pretrain.dir/pretrain.cpp.o.d"
  "pretrain"
  "pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
