file(REMOVE_RECURSE
  "CMakeFiles/timeseries_ingest.dir/timeseries_ingest.cpp.o"
  "CMakeFiles/timeseries_ingest.dir/timeseries_ingest.cpp.o.d"
  "timeseries_ingest"
  "timeseries_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
