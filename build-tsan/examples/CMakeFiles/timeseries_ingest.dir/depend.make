# Empty dependencies file for timeseries_ingest.
# This may be replaced when dependencies are built.
