#ifndef ADCACHE_BENCH_BENCH_COMMON_H_
#define ADCACHE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"

namespace adcache::bench {

/// Shared experiment scaffolding. Every bench binary builds a fresh
/// simulated environment per (strategy, configuration) cell so runs are
/// independent and deterministic.
///
/// Interleaved-trial protocol: when a bench reports best-of-N over trials
/// that alternate between two configurations sharing live stores (so
/// transient machine noise cannot land entirely in one column), every timed
/// leg must start from an IDENTICAL cache state. The recipe is: restore the
/// cache's full capacity, drop its contents explicitly (Cache::Prune), then
/// re-warm with an untimed pass over the working set. Shrinking capacity to
/// force eviction is NOT a substitute for Prune — it leaves
/// backend-dependent residue (LRU keeps the newest tail of the access
/// stream, CLOCK keeps a rotation-dependent subset), which biases whichever
/// leg runs next. See bench_concurrency.cc RunCacheBackendScaling for the
/// reference implementation.
struct BenchConfig {
  uint64_t num_keys = 20000;
  size_t value_size = 1000;  // paper: 1000-byte values, 24-byte keys
  size_t key_size = 24;
  /// Cache budget as a fraction of the logical database size.
  double cache_fraction = 0.25;  // paper default: 25%
  uint64_t ops = 20000;
  uint64_t seed = 42;
  int num_threads = 1;
  /// Batch size for point lookups: > 1 routes them through
  /// KvStore::MultiGet (see Runner::RunnerOptions::multiget_batch).
  size_t multiget_batch = 1;
  /// Flash budget for the secondary (slab-log) cache tier under the DRAM
  /// block cache; 0 disables the tier. Routed to
  /// AdCacheOptions::secondary_cache_budget, so it applies to the adcache
  /// strategy only (baselines ignore it).
  size_t secondary_cache_bytes = 0;
  /// Unified memory wall total (AdCacheOptions::memory.total_memory_budget;
  /// adcache strategy only). 0 keeps the legacy cache-only budget above;
  /// > 0 puts write buffers and bloom bits under one RL-carved wall.
  size_t total_memory_budget = 0;
  /// With a wall set: false freezes memtable/bloom at the initial carve
  /// (static split baseline), true lets the controller move them.
  bool memwall_adaptive = true;
  /// Statistics registry level for the store (core/statistics.h); kAll also
  /// records op-latency histograms.
  core::StatsLevel stats_level = core::StatsLevel::kExceptTimers;
  /// Event listeners, installed before the store opens (adcache only).
  std::vector<std::shared_ptr<core::EventListener>> listeners;

  size_t DatabaseBytes() const {
    return static_cast<size_t>(num_keys) * (key_size + value_size);
  }
  size_t CacheBytes() const {
    return static_cast<size_t>(cache_fraction *
                               static_cast<double>(DatabaseBytes()));
  }
};

/// One fully isolated store + simulated environment + runner.
class BenchInstance {
 public:
  BenchInstance(const std::string& strategy, const BenchConfig& config)
      : config_(config) {
    env_ = NewMemEnv(&clock_);
    core::StoreConfig store_config;
    store_config.lsm.env = env_.get();
    store_config.lsm.block_size = 4 * 1024;       // paper: 4 KB blocks
    store_config.lsm.table_file_size = 2 * 1024 * 1024;
    store_config.lsm.memtable_size = 2 * 1024 * 1024;
    store_config.lsm.level1_size_base = 8 * 1024 * 1024;
    store_config.lsm.enable_wal = false;  // pure cache benchmarking
    store_config.dbname = "/bench_" + strategy;
    store_config.cache_budget = config.CacheBytes();
    store_config.seed = config.seed;
    store_config.adcache.controller.window_size = 1000;
    store_config.adcache.secondary_cache_budget = config.secondary_cache_bytes;
    store_config.adcache.memory.total_memory_budget =
        config.total_memory_budget;
    store_config.adcache.memory.adaptive_write_buffer =
        config.memwall_adaptive;
    store_config.adcache.memory.adaptive_bloom = config.memwall_adaptive;
    store_config.adcache.stats_level = config.stats_level;
    store_config.adcache.listeners = config.listeners;
    Status s;
    store_ = core::CreateStore(strategy, store_config, &s);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to create %s: %s\n", strategy.c_str(),
                   s.ToString().c_str());
      std::abort();
    }
    // Baselines don't read adcache options; set the registry level directly.
    store_->statistics()->SetStatsLevel(config.stats_level);
    keys_.num_keys = config.num_keys;
    keys_.key_size = config.key_size;
    keys_.value_size = config.value_size;
    runner_ = std::make_unique<workload::Runner>(store_.get(), keys_,
                                                 &clock_);
  }

  Status Load() { return runner_->LoadDatabase(); }

  workload::PhaseResult Run(const workload::Phase& phase) {
    workload::Runner::RunnerOptions opts;
    opts.seed = config_.seed + 1000;
    opts.num_threads = config_.num_threads;
    opts.multiget_batch = config_.multiget_batch;
    return runner_->RunPhase(phase, opts);
  }

  core::KvStore* store() { return store_.get(); }
  workload::Runner* runner() { return runner_.get(); }
  SimClock* clock() { return &clock_; }
  const workload::KeySpace& keys() const { return keys_; }

 private:
  BenchConfig config_;
  SimClock clock_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<core::KvStore> store_;
  workload::KeySpace keys_;
  std::unique_ptr<workload::Runner> runner_;
};

/// Loads a store and runs `phase`, returning the measured result.
inline workload::PhaseResult RunCell(const std::string& strategy,
                                     const BenchConfig& config,
                                     const workload::Phase& phase) {
  BenchInstance instance(strategy, config);
  Status s = instance.Load();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return instance.Run(phase);
}

inline void PrintBanner(const char* experiment, const char* paper_ref,
                        const char* expectation) {
  std::printf("\n============================================================"
              "====================\n");
  std::printf("%s  (%s)\n", experiment, paper_ref);
  std::printf("paper: %s\n", expectation);
  std::printf("=============================================================="
              "==================\n");
}

}  // namespace adcache::bench

#endif  // ADCACHE_BENCH_BENCH_COMMON_H_
