// Reproduces Figure 8 and Table 4 of the AdCache paper: the six-phase
// dynamic workload A -> B -> C -> D -> E -> F (Table 3 mixes), reporting
// per-phase throughput and hit rate for every strategy plus the final
// throughput/hit-rate ranking table.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  const std::vector<std::string> strategies = {
      "block", "range", "range_lecar", "range_cacheus", "adcache"};

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;  // paper default
  const uint64_t ops_per_phase = 12000;

  PrintBanner("Dynamic workload phases A-F", "Figure 8 + Table 4",
              "AdCache ranks best on average (1.3/1.3); block cache strong "
              "in read phases A-C; range caches strong in write phases D-F");

  auto phases = workload::Table3Phases(ops_per_phase);

  // results[phase][strategy] = result
  std::map<std::string, std::map<std::string, workload::PhaseResult>> results;

  workload::PrintResultHeader();
  for (const auto& strategy : strategies) {
    BenchInstance instance(strategy, config);
    Status s = instance.Load();
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    for (const auto& phase : phases) {
      workload::PhaseResult r = instance.Run(phase);
      results[phase.name][strategy] = r;
      workload::PrintResult(r);
      std::fflush(stdout);
    }
  }

  // Table 4: rankings (throughput/hit rate), lower is better.
  std::printf("\n--- Table 4: rankings (throughput/hit rate), lower is "
              "better ---\n");
  std::printf("%-8s", "phase");
  for (const auto& s : strategies) std::printf(" %14s", s.c_str());
  std::printf("\n");

  std::map<std::string, double> qps_rank_sum;
  std::map<std::string, double> hit_rank_sum;
  for (const auto& phase : phases) {
    auto rank_of = [&](auto metric) {
      std::vector<std::pair<double, std::string>> vals;
      for (const auto& s : strategies) {
        vals.push_back({metric(results[phase.name][s]), s});
      }
      std::sort(vals.begin(), vals.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::map<std::string, int> ranks;
      for (size_t i = 0; i < vals.size(); i++) {
        ranks[vals[i].second] = static_cast<int>(i) + 1;
      }
      return ranks;
    };
    auto qps_ranks =
        rank_of([](const workload::PhaseResult& r) { return r.qps; });
    auto hit_ranks =
        rank_of([](const workload::PhaseResult& r) { return r.hit_rate; });
    std::printf("%-8s", phase.name.c_str());
    for (const auto& s : strategies) {
      char cell[16];
      snprintf(cell, sizeof(cell), "%d/%d", qps_ranks[s], hit_ranks[s]);
      std::printf(" %14s", cell);
      qps_rank_sum[s] += qps_ranks[s];
      hit_rank_sum[s] += hit_ranks[s];
    }
    std::printf("\n");
  }
  std::printf("%-8s", "Average");
  for (const auto& s : strategies) {
    char cell[16];
    snprintf(cell, sizeof(cell), "%.1f/%.1f",
             qps_rank_sum[s] / static_cast<double>(phases.size()),
             hit_rank_sum[s] / static_cast<double>(phases.size()));
    std::printf(" %14s", cell);
  }
  std::printf("\n");

  // §5.3 headline: throughput improvement over RocksDB in write-heavy and
  // long-scan phases (paper: 25%-37%).
  std::printf("\n--- AdCache throughput vs RocksDB block cache per phase "
              "---\n");
  for (const auto& phase : phases) {
    const auto& ad = results[phase.name]["adcache"];
    double bl = results[phase.name]["block"].qps;
    std::printf("phase %s: %+.1f%%  (end-of-phase range ratio %.2f)\n",
                phase.name.c_str(),
                bl == 0 ? 0 : (ad.qps / bl - 1.0) * 100,
                ad.end_stats.range_ratio);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
