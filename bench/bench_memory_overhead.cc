// Reproduces Table 2 of the AdCache paper: memory overhead of the
// reinforcement-learning model. Paper numbers: ~140k parameters, ~550 KB of
// weights, ~2 MB total with Adam moments and gradient buffers — negligible
// next to cache sizes.

#include <cstdio>

#include "core/policy_controller.h"
#include "rl/actor_critic.h"
#include "core/admission.h"

namespace adcache::bench {
namespace {

void Run() {
  std::printf("==============================================================="
              "=\n");
  std::printf("RL model memory overhead  (Table 2)\n");
  std::printf("paper: ~140k params, ~550 KB weights, ~2 MB with training "
              "state\n");
  std::printf("==============================================================="
              "=\n");

  rl::ActorCriticOptions options;
  options.state_dim = core::PolicyController::kStateDim;
  options.action_dim = core::PolicyController::kActionDim;
  options.hidden_dim = 256;  // paper configuration
  rl::ActorCriticAgent agent(options);
  auto fp = agent.GetMemoryFootprint();

  std::printf("%-40s %15zu\n", "parameters (actor + critic)",
              fp.parameter_count);
  std::printf("%-40s %12.1f KB\n", "model weights (float32)",
              static_cast<double>(fp.parameter_bytes) / 1024);
  std::printf("%-40s %12.1f KB\n",
              "Adam moments + gradient buffers",
              static_cast<double>(fp.optimizer_bytes) / 1024);
  std::printf("%-40s %12.1f MB\n", "total during online training",
              static_cast<double>(fp.total_bytes) / (1024 * 1024));

  core::PointAdmissionController admission;
  std::printf("%-40s %12.1f KB\n",
              "admission sketch + doorkeeper",
              static_cast<double>(admission.MemoryUsage()) / 1024);
  std::printf("\nFor scale: a 25%% cache over a 100 GB database is 25 GB; "
              "the full training state is %.4f%% of that.\n",
              static_cast<double>(fp.total_bytes) /
                  (25.0 * 1024 * 1024 * 1024) * 100);
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
