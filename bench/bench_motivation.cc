// Reproduces Figure 1 of the AdCache paper: the motivating observation that
// neither block-based nor result-based caching wins across workload
// patterns — block caching excels under scan-heavy read-mostly traffic,
// result caching under point/update-heavy traffic — while AdCache tracks
// the better of the two in each regime.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  const std::vector<std::string> strategies = {"block", "range", "adcache"};

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.ops = 15000;

  PrintBanner("Motivation: no single static strategy wins", "Figure 1",
              "block cache wins the scan-heavy read-mostly pattern; range "
              "cache wins the point/update-heavy pattern; AdCache tracks "
              "the winner in both");

  std::vector<workload::Phase> patterns = {
      // Scan-heavy, read-mostly: physical block locality pays off.
      workload::Phase{"scan_read_heavy", workload::OpMix{10, 85, 0, 5},
                      config.ops, 0.9},
      // Point + update heavy: compaction invalidation punishes block cache.
      workload::Phase{"point_update_heavy", workload::OpMix{50, 5, 0, 45},
                      config.ops, 0.9},
  };

  std::map<std::string, std::map<std::string, double>> hit;
  std::printf("%-16s %20s %22s\n", "strategy", "scan_read_heavy",
              "point_update_heavy");
  for (const auto& strategy : strategies) {
    std::printf("%-16s", strategy.c_str());
    for (const auto& phase : patterns) {
      workload::PhaseResult r = RunCell(strategy, config, phase);
      hit[strategy][phase.name] = r.hit_rate;
      std::printf(" %20.3f", r.hit_rate);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nblock - range hit-rate gap: %+.1f pp (scan-read-heavy), "
              "%+.1f pp (point-update-heavy)\n",
              (hit["block"]["scan_read_heavy"] -
               hit["range"]["scan_read_heavy"]) * 100,
              (hit["block"]["point_update_heavy"] -
               hit["range"]["point_update_heavy"]) * 100);
  std::printf("A positive then negative gap demonstrates the trade-off that "
              "motivates adaptive partitioning.\n");
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
