// Component micro-benchmarks (google-benchmark): raw costs of the data
// structures on AdCache's hot paths. These support the paper's §4.2 claim
// that the learning machinery is cheap relative to query serving.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cacheus.h"
#include "cache/lecar.h"
#include "cache/lru_cache.h"
#include "cache/range_cache.h"
#include "core/admission.h"
#include "lsm/block.h"
#include "lsm/block_builder.h"
#include "lsm/dbformat.h"
#include "rl/actor_critic.h"
#include "sketch/count_min_sketch.h"
#include "util/random.h"
#include "workload/zipfian.h"

namespace adcache {
namespace {

void BM_LruCacheLookupHit(benchmark::State& state) {
  auto cache = NewLRUCache(1 << 20, 0);
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(i);
    cache->Release(cache->Insert(Slice(key), nullptr, 64, nullptr));
  }
  Random rng(1);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(1000));
    Cache::Handle* h = cache->Lookup(Slice(key));
    if (h != nullptr) cache->Release(h);
  }
}
BENCHMARK(BM_LruCacheLookupHit);

void BM_LruCacheInsertEvict(benchmark::State& state) {
  auto cache = NewLRUCache(64 * 1024, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++);
    cache->Release(cache->Insert(Slice(key), nullptr, 1024, nullptr));
  }
}
BENCHMARK(BM_LruCacheInsertEvict);

void BM_RangeCachePointGet(benchmark::State& state) {
  RangeCache cache(1 << 22, NewLruPolicy());
  for (int i = 0; i < 2000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    cache.PutPoint(Slice(key), Slice("value"));
  }
  Random rng(2);
  std::string value;
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d",
             static_cast<int>(rng.Uniform(2000)));
    benchmark::DoNotOptimize(cache.Get(Slice(key), &value));
  }
}
BENCHMARK(BM_RangeCachePointGet);

void BM_RangeCacheScanHit(benchmark::State& state) {
  RangeCache cache(1 << 22, NewLruPolicy());
  std::vector<KvPair> run;
  for (int i = 0; i < 1024; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    run.push_back(KvPair{key, "value"});
  }
  cache.PutScan(Slice(run.front().key), run, run.size());
  Random rng(3);
  std::vector<KvPair> out;
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d",
             static_cast<int>(rng.Uniform(1024 - n)));
    benchmark::DoNotOptimize(cache.GetScan(Slice(key), n, &out));
  }
}
BENCHMARK(BM_RangeCacheScanHit)->Arg(16)->Arg(64);

template <typename PolicyFactory>
void PolicyChurn(benchmark::State& state, PolicyFactory factory) {
  auto policy = factory();
  for (int i = 0; i < 512; i++) policy->OnInsert("k" + std::to_string(i));
  Random rng(4);
  uint64_t next = 512;
  for (auto _ : state) {
    uint64_t r = rng.Uniform(100);
    if (r < 60) {
      policy->OnAccess("k" + std::to_string(rng.Uniform(next)));
    } else if (r < 80) {
      std::string victim;
      if (policy->Victim(&victim)) policy->OnMiss(victim);
    } else {
      policy->OnInsert("k" + std::to_string(next++));
    }
  }
}

void BM_PolicyLru(benchmark::State& state) {
  PolicyChurn(state, [] { return NewLruPolicy(); });
}
BENCHMARK(BM_PolicyLru);

void BM_PolicyLeCaR(benchmark::State& state) {
  PolicyChurn(state, [] { return NewLeCaRPolicy(1); });
}
BENCHMARK(BM_PolicyLeCaR);

void BM_PolicyCacheus(benchmark::State& state) {
  PolicyChurn(state, [] { return NewCacheusPolicy(1); });
}
BENCHMARK(BM_PolicyCacheus);

void BM_CountMinIncrement(benchmark::State& state) {
  CountMinSketch sketch;
  Random rng(5);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(10000));
    benchmark::DoNotOptimize(sketch.Increment(Slice(key)));
  }
}
BENCHMARK(BM_CountMinIncrement);

void BM_PointAdmissionDecision(benchmark::State& state) {
  core::PointAdmissionController ctl;
  ctl.SetThreshold(0.001);
  Random rng(6);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(10000));
    benchmark::DoNotOptimize(ctl.RecordMissAndCheckAdmit(Slice(key)));
  }
}
BENCHMARK(BM_PointAdmissionDecision);

void BM_BlockBuild4K(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 16; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%016d", i);
    entries.push_back({lsm::MakeInternalKey(key, 1, lsm::kTypeValue),
                       std::string(240, 'v')});
  }
  for (auto _ : state) {
    lsm::BlockBuilder builder(16);
    for (const auto& [k, v] : entries) builder.Add(Slice(k), Slice(v));
    benchmark::DoNotOptimize(builder.Finish());
  }
}
BENCHMARK(BM_BlockBuild4K);

void BM_BlockSeek(benchmark::State& state) {
  lsm::BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 256; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%016d", i);
    keys.push_back(lsm::MakeInternalKey(key, 1, lsm::kTypeValue));
    builder.Add(Slice(keys.back()), Slice("v"));
  }
  lsm::Block block(builder.Finish().ToString());
  lsm::InternalKeyComparator cmp;
  std::unique_ptr<lsm::Iterator> it(block.NewIterator(&cmp));
  Random rng(7);
  for (auto _ : state) {
    it->Seek(Slice(keys[rng.Uniform(keys.size())]));
    benchmark::DoNotOptimize(it->Valid());
  }
}
BENCHMARK(BM_BlockSeek);

void BM_AgentInference(benchmark::State& state) {
  rl::ActorCriticOptions opts;
  opts.state_dim = 11;
  opts.action_dim = 4;
  opts.hidden_dim = 256;  // paper-size network
  rl::ActorCriticAgent agent(opts);
  std::vector<float> s(11, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Act(s, false));
  }
}
BENCHMARK(BM_AgentInference);

void BM_AgentTrainStep(benchmark::State& state) {
  rl::ActorCriticOptions opts;
  opts.state_dim = 11;
  opts.action_dim = 4;
  opts.hidden_dim = 256;
  rl::ActorCriticAgent agent(opts);
  std::vector<float> s(11, 0.5f);
  std::vector<float> a(4, 0.5f);
  for (auto _ : state) {
    agent.Observe(s, a, 0.01f, s);
  }
}
BENCHMARK(BM_AgentTrainStep);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ScrambledZipfianGenerator gen(1000000, 0.9, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace adcache

BENCHMARK_MAIN();
