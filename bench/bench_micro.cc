// Component micro-benchmarks (google-benchmark): raw costs of the data
// structures on AdCache's hot paths. These support the paper's §4.2 claim
// that the learning machinery is cheap relative to query serving.
//
// `bench_micro --stats-smoke` skips the benchmarks and instead runs a short
// AdCache workload with full observability on (StatsLevel::kAll, PerfContext
// at kEnableTime, a counting EventListener, the periodic stats dumper),
// printing one JSON object that scripts/check.sh validates.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/cacheus.h"
#include "cache/lecar.h"
#include "cache/lru_cache.h"
#include "cache/range_cache.h"
#include "core/admission.h"
#include "lsm/block.h"
#include "lsm/block_builder.h"
#include "lsm/dbformat.h"
#include "core/statistics.h"
#include "rl/actor_critic.h"
#include "sketch/count_min_sketch.h"
#include "util/perf_context.h"
#include "util/random.h"
#include "workload/zipfian.h"

namespace adcache {
namespace {

void BM_LruCacheLookupHit(benchmark::State& state) {
  auto cache = NewLRUCache(1 << 20, 0);
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(i);
    cache->Release(cache->Insert(Slice(key), nullptr, 64, nullptr));
  }
  Random rng(1);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(1000));
    Cache::Handle* h = cache->Lookup(Slice(key));
    if (h != nullptr) cache->Release(h);
  }
}
BENCHMARK(BM_LruCacheLookupHit);

void BM_LruCacheInsertEvict(benchmark::State& state) {
  auto cache = NewLRUCache(64 * 1024, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++);
    cache->Release(cache->Insert(Slice(key), nullptr, 1024, nullptr));
  }
}
BENCHMARK(BM_LruCacheInsertEvict);

void BM_RangeCachePointGet(benchmark::State& state) {
  RangeCache cache(1 << 22, NewLruPolicy());
  for (int i = 0; i < 2000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    cache.PutPoint(Slice(key), Slice("value"));
  }
  Random rng(2);
  std::string value;
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d",
             static_cast<int>(rng.Uniform(2000)));
    benchmark::DoNotOptimize(cache.Get(Slice(key), &value));
  }
}
BENCHMARK(BM_RangeCachePointGet);

void BM_RangeCacheScanHit(benchmark::State& state) {
  RangeCache cache(1 << 22, NewLruPolicy());
  std::vector<KvPair> run;
  for (int i = 0; i < 1024; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    run.push_back(KvPair{key, "value"});
  }
  cache.PutScan(Slice(run.front().key), run, run.size());
  Random rng(3);
  std::vector<KvPair> out;
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d",
             static_cast<int>(rng.Uniform(1024 - n)));
    benchmark::DoNotOptimize(cache.GetScan(Slice(key), n, &out));
  }
}
BENCHMARK(BM_RangeCacheScanHit)->Arg(16)->Arg(64);

template <typename PolicyFactory>
void PolicyChurn(benchmark::State& state, PolicyFactory factory) {
  auto policy = factory();
  for (int i = 0; i < 512; i++) policy->OnInsert("k" + std::to_string(i));
  Random rng(4);
  uint64_t next = 512;
  for (auto _ : state) {
    uint64_t r = rng.Uniform(100);
    if (r < 60) {
      policy->OnAccess("k" + std::to_string(rng.Uniform(next)));
    } else if (r < 80) {
      std::string victim;
      if (policy->Victim(&victim)) policy->OnMiss(victim);
    } else {
      policy->OnInsert("k" + std::to_string(next++));
    }
  }
}

void BM_PolicyLru(benchmark::State& state) {
  PolicyChurn(state, [] { return NewLruPolicy(); });
}
BENCHMARK(BM_PolicyLru);

void BM_PolicyLeCaR(benchmark::State& state) {
  PolicyChurn(state, [] { return NewLeCaRPolicy(1); });
}
BENCHMARK(BM_PolicyLeCaR);

void BM_PolicyCacheus(benchmark::State& state) {
  PolicyChurn(state, [] { return NewCacheusPolicy(1); });
}
BENCHMARK(BM_PolicyCacheus);

void BM_CountMinIncrement(benchmark::State& state) {
  CountMinSketch sketch;
  Random rng(5);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(10000));
    benchmark::DoNotOptimize(sketch.Increment(Slice(key)));
  }
}
BENCHMARK(BM_CountMinIncrement);

void BM_PointAdmissionDecision(benchmark::State& state) {
  core::PointAdmissionController ctl;
  ctl.SetThreshold(0.001);
  Random rng(6);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(10000));
    benchmark::DoNotOptimize(ctl.RecordMissAndCheckAdmit(Slice(key)));
  }
}
BENCHMARK(BM_PointAdmissionDecision);

void BM_BlockBuild4K(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 16; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%016d", i);
    entries.push_back({lsm::MakeInternalKey(key, 1, lsm::kTypeValue),
                       std::string(240, 'v')});
  }
  for (auto _ : state) {
    lsm::BlockBuilder builder(16);
    for (const auto& [k, v] : entries) builder.Add(Slice(k), Slice(v));
    benchmark::DoNotOptimize(builder.Finish());
  }
}
BENCHMARK(BM_BlockBuild4K);

void BM_BlockSeek(benchmark::State& state) {
  lsm::BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 256; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%016d", i);
    keys.push_back(lsm::MakeInternalKey(key, 1, lsm::kTypeValue));
    builder.Add(Slice(keys.back()), Slice("v"));
  }
  lsm::Block block(builder.Finish().ToString());
  lsm::InternalKeyComparator cmp;
  std::unique_ptr<lsm::Iterator> it(block.NewIterator(&cmp));
  Random rng(7);
  for (auto _ : state) {
    it->Seek(Slice(keys[rng.Uniform(keys.size())]));
    benchmark::DoNotOptimize(it->Valid());
  }
}
BENCHMARK(BM_BlockSeek);

void BM_AgentInference(benchmark::State& state) {
  rl::ActorCriticOptions opts;
  opts.state_dim = 11;
  opts.action_dim = 4;
  opts.hidden_dim = 256;  // paper-size network
  rl::ActorCriticAgent agent(opts);
  std::vector<float> s(11, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Act(s, false));
  }
}
BENCHMARK(BM_AgentInference);

void BM_AgentTrainStep(benchmark::State& state) {
  rl::ActorCriticOptions opts;
  opts.state_dim = 11;
  opts.action_dim = 4;
  opts.hidden_dim = 256;
  rl::ActorCriticAgent agent(opts);
  std::vector<float> s(11, 0.5f);
  std::vector<float> a(4, 0.5f);
  for (auto _ : state) {
    agent.Observe(s, a, 0.01f, s);
  }
}
BENCHMARK(BM_AgentTrainStep);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ScrambledZipfianGenerator gen(1000000, 0.9, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace

// ---------------------------------------------------------------------------
// --stats-smoke: end-to-end observability exercise (see file comment).
// ---------------------------------------------------------------------------

class CountingListener : public core::EventListener {
 public:
  std::atomic<uint64_t> rl_actions{0};
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  void OnRlAction(const core::RlActionInfo&) override { rl_actions++; }
  void OnFlushCompleted(const core::FlushJobInfo&) override { flushes++; }
  void OnCompactionCompleted(const core::CompactionJobInfo&) override {
    compactions++;
  }
};

int RunStatsSmoke() {
  util::SetPerfLevel(util::PerfLevel::kEnableTime);

  bench::BenchConfig config;
  config.num_keys = 4000;
  config.ops = 6000;  // six tuning windows at window_size 1000
  config.stats_level = core::StatsLevel::kAll;
  // Small DRAM + a flash tier so demotions, secondary probes and the
  // secondary gauges all fire during the smoke phase.
  config.cache_fraction = 0.05;
  config.secondary_cache_bytes = 8 * 1024 * 1024;
  auto counting = std::make_shared<CountingListener>();
  config.listeners.push_back(counting);

  bench::BenchInstance instance("adcache", config);
  Status s = instance.Load();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<uint64_t> dumps{0};
  std::string last_dump;
  core::Statistics* stats = instance.store()->statistics();
  {
    core::PeriodicStatsDumper dumper(stats, 50, [&](const std::string& json) {
      dumps.fetch_add(1, std::memory_order_relaxed);
      last_dump = json;  // single consumer: callbacks are serialised
    });
    workload::Phase phase = workload::BalancedWorkload(config.ops);
    workload::Runner::RunnerOptions opts;
    opts.seed = config.seed + 1000;
    opts.record_latencies = true;
    workload::PhaseResult result =
        instance.runner()->RunPhase(phase, opts);
    // Drain maintenance before the final dump: background compaction races
    // the end of the phase, and the check.sh contract asserts the
    // compaction-bandwidth tickers are nonzero.
    if (lsm::ShardedDB* db = instance.store()->db()) {
      db->FlushMemTable();
      db->CompactAll();
    }
    // Sync the component tickers before the final dump.
    instance.store()->GetCacheStats();
    dumper.Stop();  // final dump fires before the join

    std::printf("{\"phase\":%s,\"stats\":%s,\"rl_action_events\":%llu,"
                "\"flush_events\":%llu,\"stats_dumps\":%llu,"
                "\"perf_block_reads\":%llu,\"perf_memtable_probes\":%llu}\n",
                workload::PhaseResultToJson(result).c_str(),
                stats->ToJson().c_str(),
                static_cast<unsigned long long>(counting->rl_actions.load()),
                static_cast<unsigned long long>(counting->flushes.load()),
                static_cast<unsigned long long>(dumps.load()),
                static_cast<unsigned long long>(
                    util::GetPerfContext()->block_read_count),
                static_cast<unsigned long long>(
                    util::GetPerfContext()->memtable_probe_count));
  }
  std::fprintf(stderr, "%s", stats->ToString().c_str());
  std::fprintf(stderr, "perf context: %s\n",
               util::GetPerfContext()->ToString().c_str());
  return 0;
}

}  // namespace adcache

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--stats-smoke") == 0) {
      return adcache::RunStatsSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
