// bench_connections: closed-loop multi-connection client against the
// in-process adcache_server front door. Sweeps connection counts from 64 to
// 10k across read/write mixes, with the read coalescer on and off, and
// reports per-cell throughput plus p50/p95/p99 request latency.
//
// Protocol per connection: one request in flight (closed loop) — build the
// next GET/SET as an inline RESP command, send, wait for the complete reply,
// record the latency, repeat. Client connections are distributed over a few
// epoll-driven client threads so 10k sockets don't need 10k threads.
//
//   bench_connections            full sweep (table + JSON lines)
//   bench_connections --smoke    tiny sweep, single JSON object on stdout
//                                (asserted by scripts/check.sh --server)
//
// The store is the same simulated-environment BenchInstance every other
// bench uses, so cells are deterministic apart from scheduling.

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "core/statistics.h"
#include "server/server.h"
#include "util/histogram.h"
#include "util/random.h"

namespace adcache {
namespace {

// ---------------------------------------------------------------------------
// Minimal client-side RESP reply scanner
// ---------------------------------------------------------------------------

/// Returns true when [data, data+len) starts with one complete reply and
/// sets *consumed to its length; false means read more. Understands the
/// reply shapes the server produces for GET/SET (+OK, -ERR, :N, $N, $-1).
bool ScanReply(const char* data, size_t len, size_t* consumed, bool* is_err) {
  if (len == 0) return false;
  const char* crlf = static_cast<const char*>(memchr(data, '\n', len));
  if (crlf == nullptr) return false;
  size_t line = static_cast<size_t>(crlf - data) + 1;
  *is_err = data[0] == '-';
  if (data[0] != '$') {
    *consumed = line;
    return true;
  }
  long n = atol(data + 1);
  if (n < 0) {  // $-1 nil
    *consumed = line;
    return true;
  }
  size_t total = line + static_cast<size_t>(n) + 2;
  if (len < total) return false;
  *consumed = total;
  return true;
}

// ---------------------------------------------------------------------------
// Closed-loop connection state
// ---------------------------------------------------------------------------

struct ClientConn {
  int fd = -1;
  uint64_t remaining = 0;
  std::string out;     // unsent request bytes
  size_t out_off = 0;
  std::string in;      // partial reply bytes
  std::chrono::steady_clock::time_point sent_at;
  Random rng{0};
  bool waiting = false;
};

struct CellSpec {
  int conns = 64;
  int read_pct = 95;
  bool coalesce = true;
  uint64_t ops_per_conn = 100;
};

struct CellResult {
  CellSpec spec;
  double seconds = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  core::HistogramSnapshot latency;  // microseconds
  server::Server::CoalesceStats coalesce;
};

class ClientThread {
 public:
  ClientThread(int port, const workload::KeySpace* keys, int read_pct,
               uint64_t ops_per_conn, uint64_t seed)
      : port_(port), keys_(keys), read_pct_(read_pct),
        ops_per_conn_(ops_per_conn), seed_(seed) {}

  bool AddConn() {
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close(fd);
      return false;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_unique<ClientConn>();
    conn->fd = fd;
    conn->remaining = ops_per_conn_;
    conn->rng = Random(seed_ + static_cast<uint64_t>(fd) * 2654435761u);
    conns_.push_back(std::move(conn));
    return true;
  }

  void Run() {
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
    for (auto& conn : conns_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->fd, &ev);
      IssueNext(conn.get());
    }
    std::vector<epoll_event> events(256);
    while (live_ > 0) {
      int n = epoll_wait(epfd_, events.data(),
                         static_cast<int>(events.size()), 1000);
      for (int i = 0; i < n; i++) {
        ClientConn* conn = static_cast<ClientConn*>(events[i].data.ptr);
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          Finish(conn, /*error=*/true);
          continue;
        }
        if (events[i].events & EPOLLOUT) PumpSend(conn);
        if (events[i].events & EPOLLIN) PumpRecv(conn);
      }
    }
    close(epfd_);
  }

  const Histogram& latency() const { return latency_; }
  uint64_t ops() const { return ops_; }
  uint64_t errors() const { return errors_; }

 private:
  void IssueNext(ClientConn* conn) {
    if (conn->remaining == 0) {
      Finish(conn, /*error=*/false);
      return;
    }
    conn->remaining--;
    uint64_t index = conn->rng.Next() % keys_->num_keys;
    bool is_read =
        static_cast<int>(conn->rng.Next() % 100) < read_pct_;
    conn->out.clear();
    conn->out_off = 0;
    if (is_read) {
      conn->out = "GET " + keys_->KeyAt(index) + "\r\n";
    } else {
      conn->out = "SET " + keys_->KeyAt(index) + " " +
                  keys_->ValueFor(index) + "\r\n";
    }
    conn->waiting = true;
    conn->sent_at = std::chrono::steady_clock::now();
    PumpSend(conn);
  }

  void PumpSend(ClientConn* conn) {
    while (conn->out_off < conn->out.size()) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        SetWritable(conn, true);
        return;
      }
      Finish(conn, /*error=*/true);
      return;
    }
    SetWritable(conn, false);
  }

  void PumpRecv(ClientConn* conn) {
    char buf[16 * 1024];
    while (true) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      Finish(conn, /*error=*/n != 0 || conn->waiting);
      return;
    }
    size_t consumed = 0;
    bool is_err = false;
    if (conn->waiting &&
        ScanReply(conn->in.data(), conn->in.size(), &consumed, &is_err)) {
      auto now = std::chrono::steady_clock::now();
      uint64_t micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - conn->sent_at)
              .count());
      latency_.Add(micros);
      ops_++;
      if (is_err) errors_++;
      conn->in.erase(0, consumed);
      conn->waiting = false;
      IssueNext(conn);
    }
  }

  void SetWritable(ClientConn* conn, bool on) {
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.ptr = conn;
    epoll_ctl(epfd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void Finish(ClientConn* conn, bool error) {
    if (conn->fd < 0) return;
    if (error) errors_++;
    epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    conn->fd = -1;
    live_--;
  }

  int port_;
  const workload::KeySpace* keys_;
  int read_pct_;
  uint64_t ops_per_conn_;
  uint64_t seed_;
  int epfd_ = -1;
  std::vector<std::unique_ptr<ClientConn>> conns_;
  size_t live_ = 0;

 public:
  void SealConns() { live_ = conns_.size(); }

 private:
  Histogram latency_;
  uint64_t ops_ = 0;
  uint64_t errors_ = 0;
};

// ---------------------------------------------------------------------------
// Cell driver
// ---------------------------------------------------------------------------

/// Raises RLIMIT_NOFILE to the hard limit and returns the usable cap.
size_t RaiseFdLimit() {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  return static_cast<size_t>(rl.rlim_cur);
}

CellResult RunCell(core::KvStore* store, const workload::KeySpace& keys,
                   const CellSpec& spec, int server_threads) {
  CellResult result;
  result.spec = spec;

  server::ServerOptions options;
  options.port = 0;
  options.threads = server_threads;
  options.coalesce = spec.coalesce;
  std::unique_ptr<server::Server> srv;
  Status status = server::Server::Start(store, options, &srv);
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }

  int client_threads = static_cast<int>(
      std::min<unsigned>(8, std::max(2u, std::thread::hardware_concurrency())));
  if (spec.conns < client_threads) client_threads = spec.conns;
  std::vector<std::unique_ptr<ClientThread>> clients;
  for (int i = 0; i < client_threads; i++) {
    clients.push_back(std::make_unique<ClientThread>(
        srv->port(), &keys, spec.read_pct, spec.ops_per_conn,
        0x9e3779b9u * static_cast<uint64_t>(i + 1)));
  }
  int connected = 0;
  for (int i = 0; i < spec.conns; i++) {
    if (!clients[static_cast<size_t>(i % client_threads)]->AddConn()) break;
    connected++;
  }
  if (connected < spec.conns) {
    std::fprintf(stderr, "only %d/%d connections established\n", connected,
                 spec.conns);
  }
  for (auto& client : clients) client->SealConns();

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (auto& client : clients) {
    threads.emplace_back([&client] { client->Run(); });
  }
  for (auto& thread : threads) thread.join();
  auto end = std::chrono::steady_clock::now();

  Histogram merged;
  for (auto& client : clients) {
    merged.Merge(client->latency());
    result.ops += client->ops();
    result.errors += client->errors();
  }
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  result.latency = core::MakeHistogramSnapshot(merged);
  srv->Stop();
  result.coalesce = srv->GetCoalesceStats();
  return result;
}

void PrintCellJson(std::string* out, const CellResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"conns\":%d,\"read_pct\":%d,\"coalesce\":%s,\"ops\":%llu,"
      "\"errors\":%llu,\"seconds\":%.3f,\"throughput_ops_s\":%.0f,"
      "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,"
      "\"coalesced_gets\":%llu,\"batches\":%llu,\"max_batch\":%llu,"
      "\"immediate_gets\":%llu}",
      r.spec.conns, r.spec.read_pct, r.spec.coalesce ? "true" : "false",
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.errors), r.seconds,
      r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0.0,
      r.latency.p50, r.latency.p95, r.latency.p99,
      static_cast<unsigned long long>(r.coalesce.coalesced_gets),
      static_cast<unsigned long long>(r.coalesce.batches),
      static_cast<unsigned long long>(r.coalesce.max_batch),
      static_cast<unsigned long long>(r.coalesce.immediate_gets));
  out->append(buf);
}

int RunSweep(bool smoke) {
  size_t fd_cap = RaiseFdLimit();

  bench::BenchConfig config;
  config.num_keys = smoke ? 2000 : 20000;
  config.value_size = smoke ? 100 : 1000;
  bench::BenchInstance instance("adcache", config);
  Status s = instance.Load();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<int> conn_counts =
      smoke ? std::vector<int>{16, 64}
            : std::vector<int>{64, 256, 1024, 4096, 10000};
  std::vector<int> mixes = smoke ? std::vector<int>{95}
                                 : std::vector<int>{100, 95, 50};
  // Each side of the loopback pair plus epoll/wake fds needs headroom.
  int conn_cap = static_cast<int>(fd_cap / 2) - 128;
  int server_threads = smoke ? 2 : 4;

  std::string json = "{\"cells\":[";
  bool first = true;
  if (!smoke) {
    std::printf("%7s %8s %9s %12s %10s %10s %10s %9s\n", "conns", "read%",
                "coalesce", "ops/s", "p50(us)", "p95(us)", "p99(us)",
                "maxbatch");
  }
  // Interleaved best-of-N: trials alternate coalesce on/off so transient
  // machine noise cannot land entirely in one column (the protocol
  // bench_common.h prescribes; the per-trial server restart gives each leg
  // an identical — empty — coalescer state).
  const int trials = smoke ? 1 : 3;
  for (int conns : conn_counts) {
    if (conns > conn_cap) {
      std::fprintf(stderr, "clamping %d connections to fd-limit cap %d\n",
                   conns, conn_cap);
      conns = conn_cap;
    }
    for (int read_pct : mixes) {
      CellResult best[2];  // [coalesce]
      for (int trial = 0; trial < trials; trial++) {
        for (bool coalesce : {true, false}) {
          CellSpec spec;
          spec.conns = conns;
          spec.read_pct = read_pct;
          spec.coalesce = coalesce;
          // Keep total work roughly constant so big-conn cells don't
          // explode.
          uint64_t total_ops = smoke ? 4000 : 120000;
          spec.ops_per_conn =
              std::max<uint64_t>(4, total_ops / static_cast<uint64_t>(conns));
          CellResult r = RunCell(instance.store(), instance.keys(), spec,
                                 server_threads);
          CellResult& slot = best[coalesce ? 1 : 0];
          if (trial == 0 || (r.seconds > 0 && slot.seconds > 0 &&
                             static_cast<double>(r.ops) / r.seconds >
                                 static_cast<double>(slot.ops) /
                                     slot.seconds)) {
            slot = r;
          }
        }
      }
      for (bool coalesce : {true, false}) {
        const CellResult& r = best[coalesce ? 1 : 0];
        if (!first) json.append(",");
        first = false;
        PrintCellJson(&json, r);
        if (!smoke) {
          std::printf("%7d %8d %9s %12.0f %10.1f %10.1f %10.1f %9llu\n",
                      conns, read_pct, coalesce ? "on" : "off",
                      r.seconds > 0
                          ? static_cast<double>(r.ops) / r.seconds
                          : 0.0,
                      r.latency.p50, r.latency.p95, r.latency.p99,
                      static_cast<unsigned long long>(r.coalesce.max_batch));
          std::fflush(stdout);
        }
        if (r.errors != 0) {
          std::fprintf(stderr, "cell conns=%d read=%d coalesce=%d: %llu "
                       "errors\n", conns, read_pct, coalesce ? 1 : 0,
                       static_cast<unsigned long long>(r.errors));
        }
      }
    }
  }
  json.append("]}");
  std::printf("%s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace adcache

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return adcache::RunSweep(smoke);
}
