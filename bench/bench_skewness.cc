// Reproduces Figure 9 of the AdCache paper: hit rate under varying Zipfian
// skewness for the mixed workload (50% update, 25% point lookup, 25% short
// scan). Paper expectations: most strategies improve with skew; KV cache is
// flat and low; range caches overtake block cache at high skew; AdCache
// leads across the whole spectrum.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  const std::vector<std::string> strategies = {
      "block", "kv", "range", "range_lecar", "range_cacheus", "adcache"};
  const std::vector<double> skews = {0.6, 0.8, 0.9, 1.0, 1.2};

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.ops = 15000;

  PrintBanner("Hit rate vs workload skewness", "Figure 9",
              "hit rate rises with skew; KV cache flat; range caches beat "
              "block cache at high skew; AdCache best everywhere "
              "(77% @ 1.0, ~93% @ 1.2 in the paper)");

  std::printf("%-16s", "strategy");
  for (double skew : skews) std::printf("  s=%4.1f", skew);
  std::printf("   (hit rate)\n");

  std::map<std::string, std::map<double, workload::PhaseResult>> results;
  for (const auto& strategy : strategies) {
    std::printf("%-16s", strategy.c_str());
    for (double skew : skews) {
      workload::Phase phase = workload::SkewWorkload(config.ops, skew);
      workload::PhaseResult r = RunCell(strategy, config, phase);
      results[strategy][skew] = r;
      std::printf("  %6.3f", r.hit_rate);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n--- AdCache vs block cache ---\n");
  std::printf("%6s %14s %18s\n", "skew", "hit_delta(pp)",
              "sst_read_reduction");
  for (double skew : skews) {
    const auto& ad = results["adcache"][skew];
    const auto& bl = results["block"][skew];
    double reduction =
        bl.block_reads == 0
            ? 0
            : 1.0 - static_cast<double>(ad.block_reads) /
                        static_cast<double>(bl.block_reads);
    std::printf("%6.1f %14.1f %17.1f%%\n", skew,
                (ad.hit_rate - bl.hit_rate) * 100, reduction * 100);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
