// Extension experiment (paper §2.2 discusses Leaper, VLDB '20, as the main
// mitigation for compaction-induced block-cache invalidation): measures how
// much post-compaction prefetching recovers for a plain block cache under a
// compaction-heavy point-lookup workload, and where AdCache's
// compaction-immune range cache stands on the same workload.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  PrintBanner("Post-compaction prefetching (Leaper) extension",
              "extension of Figure 1 / paper §2.2",
              "leaper recovers part of the block cache's compaction losses; "
              "result-based caching (AdCache) avoids them structurally");

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.ops = 15000;

  // Point lookups with heavy updates: every compaction invalidates cached
  // blocks of the rewritten files.
  workload::Phase phase{"point_update", workload::OpMix{50, 0, 0, 50},
                        config.ops, 0.9};

  std::printf("%-16s %10s %14s %18s\n", "strategy", "hit_rate",
              "sst_reads", "prefetched_blocks");
  for (const std::string strategy : {"block", "block_leaper", "adcache"}) {
    BenchInstance instance(strategy, config);
    if (!instance.Load().ok()) std::abort();
    workload::PhaseResult r = instance.Run(phase);
    std::printf("%-16s %10.3f %14llu %18llu\n", strategy.c_str(), r.hit_rate,
                static_cast<unsigned long long>(r.block_reads),
                static_cast<unsigned long long>(
                    instance.store()->db()->GetLsmShape().prefetched_blocks));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
