// Reproduces Figure 11(a) of the AdCache paper: training overhead under
// multi-client load. The paper scales clients 1..32 on a 32-core machine
// and shows per-client QPS is unaffected by background training.
//
// Substitution (see DESIGN.md): this harness may run on few cores, so the
// experiment isolates the paper's actual claim — that online training adds
// no measurable overhead — by comparing AdCache with online learning ON
// against the same system with a frozen (pretrained-only) policy at every
// client count, reporting both simulated-I/O throughput and wall-clock
// time.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "lsm/db.h"

namespace adcache::bench {
namespace {

struct Cell {
  double qps_per_client;
  double wall_seconds;
};

Cell RunWithClients(int clients, bool online_learning) {
  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.num_threads = clients;
  config.ops = 4000 * static_cast<uint64_t>(clients);

  SimClock clock;
  auto env = NewMemEnv(&clock);
  core::StoreConfig store_config;
  store_config.lsm.env = env.get();
  store_config.lsm.block_size = 4 * 1024;
  store_config.lsm.table_file_size = 2 * 1024 * 1024;
  store_config.lsm.memtable_size = 2 * 1024 * 1024;
  store_config.lsm.level1_size_base = 8 * 1024 * 1024;
  store_config.lsm.enable_wal = false;
  store_config.dbname = "/mc";
  store_config.cache_budget = config.CacheBytes();
  store_config.adcache.controller.online_learning = online_learning;
  Status s;
  auto store = core::CreateStore("adcache", store_config, &s);
  if (!s.ok()) std::abort();

  workload::KeySpace keys;
  keys.num_keys = config.num_keys;
  keys.value_size = config.value_size;
  workload::Runner runner(store.get(), keys, &clock);
  if (!runner.LoadDatabase().ok()) std::abort();

  workload::Runner::RunnerOptions opts;
  opts.num_threads = clients;
  opts.seed = 42;
  workload::Phase phase = workload::BalancedWorkload(config.ops);
  workload::PhaseResult r = runner.RunPhase(phase, opts);

  Cell cell;
  cell.qps_per_client = r.qps / clients;
  cell.wall_seconds =
      static_cast<double>(r.elapsed_wall_micros) / 1e6;
  return cell;
}

void Run() {
  PrintBanner("Multi-client training overhead", "Figure 11(a)",
              "per-client QPS is not measurably hurt by online training "
              "(training-on tracks training-off within noise)");

  std::printf("%8s %22s %22s %12s\n", "clients", "qps/client (train on)",
              "qps/client (frozen)", "overhead");
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    Cell on = RunWithClients(clients, /*online_learning=*/true);
    Cell off = RunWithClients(clients, /*online_learning=*/false);
    double overhead =
        off.qps_per_client == 0
            ? 0
            : (off.qps_per_client - on.qps_per_client) / off.qps_per_client;
    std::printf("%8d %22.0f %22.0f %11.1f%%\n", clients, on.qps_per_client,
                off.qps_per_client, overhead * 100);
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Multi-writer write throughput: synchronous commits vs group commit.
//
// Each writer issues sync Puts against a directly-opened lsm::DB on a
// simulated device whose WAL sync latency is *realized* (the thread sleeps
// while the simulated clock is charged), so concurrent writers genuinely
// queue behind the leader's sync — the condition group commit exploits.
// Throughput is ops per simulated second (deterministic, see DESIGN.md);
// p99 latency is measured in wall microseconds per Put.
// ---------------------------------------------------------------------------

struct WriteCell {
  double ops_per_sec;       // simulated-time throughput
  double p99_micros;        // wall-clock per-Put p99
  double avg_group;         // batches per commit group
  uint64_t wal_syncs;
};

WriteCell RunWriters(int threads, bool group_commit) {
  SimClock clock;
  MemEnvOptions env_opts;
  env_opts.sync_latency_micros = 100;  // one realized device flush
  env_opts.realize_latency = true;
  auto env = NewMemEnv(&clock, env_opts);

  lsm::Options options;
  options.env = env.get();
  options.enable_group_commit = group_commit;
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, "/wb", &db).ok()) std::abort();

  constexpr int kWritesPerThread = 1500;
  const std::string value(100, 'v');
  std::vector<std::vector<uint64_t>> lat(static_cast<size_t>(threads));

  uint64_t sim_start = clock.NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      lsm::WriteOptions sync_write;
      sync_write.sync = true;
      auto& mine = lat[static_cast<size_t>(t)];
      mine.reserve(kWritesPerThread);
      char key[32];
      for (int i = 0; i < kWritesPerThread; i++) {
        std::snprintf(key, sizeof(key), "w%02d-%08d", t, i);
        uint64_t start = SystemClock::Default()->NowMicros();
        if (!db->Put(sync_write, Slice(key), Slice(value)).ok()) std::abort();
        mine.push_back(SystemClock::Default()->NowMicros() - start);
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t sim_elapsed = clock.NowMicros() - sim_start;

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  uint64_t p99 = all[std::min(all.size() - 1,
                              static_cast<size_t>(0.99 * all.size()))];

  lsm::DB::MaintenanceStats stats = db->GetMaintenanceStats();
  WriteCell cell;
  cell.ops_per_sec = sim_elapsed == 0
                         ? 0
                         : static_cast<double>(all.size()) /
                               (static_cast<double>(sim_elapsed) / 1e6);
  cell.p99_micros = static_cast<double>(p99);
  cell.avg_group = stats.write_groups == 0
                       ? 0
                       : static_cast<double>(stats.grouped_writes) /
                             static_cast<double>(stats.write_groups);
  cell.wal_syncs = stats.wal_syncs;
  return cell;
}

void RunWriteThroughput() {
  PrintBanner("Multi-writer write throughput", "group commit",
              "grouping concurrent WAL commits into one record + one sync "
              "scales aggregate sync-write throughput with writer count");

  std::printf("%8s %14s %14s %9s %12s %12s %10s\n", "writers", "sync ops/s",
              "group ops/s", "speedup", "p99 sync us", "p99 group us",
              "avg group");
  for (int threads : {1, 4, 8, 16}) {
    WriteCell sync_cell = RunWriters(threads, /*group_commit=*/false);
    WriteCell group_cell = RunWriters(threads, /*group_commit=*/true);
    double speedup = sync_cell.ops_per_sec == 0
                         ? 0
                         : group_cell.ops_per_sec / sync_cell.ops_per_sec;
    std::printf("%8d %14.0f %14.0f %8.2fx %12.0f %12.0f %10.1f\n", threads,
                sync_cell.ops_per_sec, group_cell.ops_per_sec, speedup,
                sync_cell.p99_micros, group_cell.p99_micros,
                group_cell.avg_group);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::RunWriteThroughput();
  adcache::bench::Run();
  return 0;
}
