// Reproduces Figure 11(a) of the AdCache paper: training overhead under
// multi-client load. The paper scales clients 1..32 on a 32-core machine
// and shows per-client QPS is unaffected by background training.
//
// Substitution (see DESIGN.md): this harness may run on few cores, so the
// experiment isolates the paper's actual claim — that online training adds
// no measurable overhead — by comparing AdCache with online learning ON
// against the same system with a frozen (pretrained-only) policy at every
// client count, reporting both simulated-I/O throughput and wall-clock
// time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

struct Cell {
  double qps_per_client;
  double wall_seconds;
};

Cell RunWithClients(int clients, bool online_learning) {
  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.num_threads = clients;
  config.ops = 4000 * static_cast<uint64_t>(clients);

  SimClock clock;
  auto env = NewMemEnv(&clock);
  core::StoreConfig store_config;
  store_config.lsm.env = env.get();
  store_config.lsm.block_size = 4 * 1024;
  store_config.lsm.table_file_size = 2 * 1024 * 1024;
  store_config.lsm.memtable_size = 2 * 1024 * 1024;
  store_config.lsm.level1_size_base = 8 * 1024 * 1024;
  store_config.lsm.enable_wal = false;
  store_config.dbname = "/mc";
  store_config.cache_budget = config.CacheBytes();
  store_config.adcache.controller.online_learning = online_learning;
  Status s;
  auto store = core::CreateStore("adcache", store_config, &s);
  if (!s.ok()) std::abort();

  workload::KeySpace keys;
  keys.num_keys = config.num_keys;
  keys.value_size = config.value_size;
  workload::Runner runner(store.get(), keys, &clock);
  if (!runner.LoadDatabase().ok()) std::abort();

  workload::Runner::RunnerOptions opts;
  opts.num_threads = clients;
  opts.seed = 42;
  workload::Phase phase = workload::BalancedWorkload(config.ops);
  workload::PhaseResult r = runner.RunPhase(phase, opts);

  Cell cell;
  cell.qps_per_client = r.qps / clients;
  cell.wall_seconds =
      static_cast<double>(r.elapsed_wall_micros) / 1e6;
  return cell;
}

void Run() {
  PrintBanner("Multi-client training overhead", "Figure 11(a)",
              "per-client QPS is not measurably hurt by online training "
              "(training-on tracks training-off within noise)");

  std::printf("%8s %22s %22s %12s\n", "clients", "qps/client (train on)",
              "qps/client (frozen)", "overhead");
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    Cell on = RunWithClients(clients, /*online_learning=*/true);
    Cell off = RunWithClients(clients, /*online_learning=*/false);
    double overhead =
        off.qps_per_client == 0
            ? 0
            : (off.qps_per_client - on.qps_per_client) / off.qps_per_client;
    std::printf("%8d %22.0f %22.0f %11.1f%%\n", clients, on.qps_per_client,
                off.qps_per_client, overhead * 100);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
