// Reproduces Figure 11(a) of the AdCache paper: training overhead under
// multi-client load. The paper scales clients 1..32 on a 32-core machine
// and shows per-client QPS is unaffected by background training.
//
// Substitution (see DESIGN.md): this harness may run on few cores, so the
// experiment isolates the paper's actual claim — that online training adds
// no measurable overhead — by comparing AdCache with online learning ON
// against the same system with a frozen (pretrained-only) policy at every
// client count, reporting both simulated-I/O throughput and wall-clock
// time.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cache/cache.h"
#include "cache/secondary_cache.h"
#include "core/adcache_store.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "util/options_env.h"
#include "workload/zipfian.h"

namespace adcache::bench {
namespace {

struct Cell {
  double qps_per_client;
  double wall_seconds;
};

Cell RunWithClients(int clients, bool online_learning) {
  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.num_threads = clients;
  config.ops = 4000 * static_cast<uint64_t>(clients);

  SimClock clock;
  auto env = NewMemEnv(&clock);
  core::StoreConfig store_config;
  store_config.lsm.env = env.get();
  store_config.lsm.block_size = 4 * 1024;
  store_config.lsm.table_file_size = 2 * 1024 * 1024;
  store_config.lsm.memtable_size = 2 * 1024 * 1024;
  store_config.lsm.level1_size_base = 8 * 1024 * 1024;
  store_config.lsm.enable_wal = false;
  store_config.dbname = "/mc";
  store_config.cache_budget = config.CacheBytes();
  store_config.adcache.controller.online_learning = online_learning;
  Status s;
  auto store = core::CreateStore("adcache", store_config, &s);
  if (!s.ok()) std::abort();

  workload::KeySpace keys;
  keys.num_keys = config.num_keys;
  keys.value_size = config.value_size;
  workload::Runner runner(store.get(), keys, &clock);
  if (!runner.LoadDatabase().ok()) std::abort();

  workload::Runner::RunnerOptions opts;
  opts.num_threads = clients;
  opts.seed = 42;
  workload::Phase phase = workload::BalancedWorkload(config.ops);
  workload::PhaseResult r = runner.RunPhase(phase, opts);

  Cell cell;
  cell.qps_per_client = r.qps / clients;
  cell.wall_seconds =
      static_cast<double>(r.elapsed_wall_micros) / 1e6;
  return cell;
}

void Run() {
  PrintBanner("Multi-client training overhead", "Figure 11(a)",
              "per-client QPS is not measurably hurt by online training "
              "(training-on tracks training-off within noise)");

  std::printf("%8s %22s %22s %12s\n", "clients", "qps/client (train on)",
              "qps/client (frozen)", "overhead");
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    Cell on = RunWithClients(clients, /*online_learning=*/true);
    Cell off = RunWithClients(clients, /*online_learning=*/false);
    double overhead =
        off.qps_per_client == 0
            ? 0
            : (off.qps_per_client - on.qps_per_client) / off.qps_per_client;
    std::printf("%8d %22.0f %22.0f %11.1f%%\n", clients, on.qps_per_client,
                off.qps_per_client, overhead * 100);
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Multi-writer write throughput: synchronous commits vs group commit.
//
// Each writer issues sync Puts against a directly-opened lsm::DB on a
// simulated device whose WAL sync latency is *realized* (the thread sleeps
// while the simulated clock is charged), so concurrent writers genuinely
// queue behind the leader's sync — the condition group commit exploits.
// Throughput is ops per simulated second (deterministic, see DESIGN.md);
// p99 latency is measured in wall microseconds per Put.
// ---------------------------------------------------------------------------

struct WriteCell {
  double ops_per_sec;       // simulated-time throughput
  double p99_micros;        // wall-clock per-Put p99
  double avg_group;         // batches per commit group
  uint64_t wal_syncs;
};

WriteCell RunWriters(int threads, bool group_commit) {
  SimClock clock;
  MemEnvOptions env_opts;
  env_opts.sync_latency_micros = 100;  // one realized device flush
  env_opts.realize_latency = true;
  auto env = NewMemEnv(&clock, env_opts);

  lsm::Options options;
  options.env = env.get();
  options.enable_group_commit = group_commit;
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, "/wb", &db).ok()) std::abort();

  constexpr int kWritesPerThread = 1500;
  const std::string value(100, 'v');
  std::vector<std::vector<uint64_t>> lat(static_cast<size_t>(threads));

  uint64_t sim_start = clock.NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      lsm::WriteOptions sync_write;
      sync_write.sync = true;
      auto& mine = lat[static_cast<size_t>(t)];
      mine.reserve(kWritesPerThread);
      char key[32];
      for (int i = 0; i < kWritesPerThread; i++) {
        std::snprintf(key, sizeof(key), "w%02d-%08d", t, i);
        uint64_t start = SystemClock::Default()->NowMicros();
        if (!db->Put(sync_write, Slice(key), Slice(value)).ok()) std::abort();
        mine.push_back(SystemClock::Default()->NowMicros() - start);
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t sim_elapsed = clock.NowMicros() - sim_start;

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  uint64_t p99 = all[std::min(all.size() - 1,
                              static_cast<size_t>(0.99 * all.size()))];

  lsm::DB::MaintenanceStats stats = db->GetMaintenanceStats();
  WriteCell cell;
  cell.ops_per_sec = sim_elapsed == 0
                         ? 0
                         : static_cast<double>(all.size()) /
                               (static_cast<double>(sim_elapsed) / 1e6);
  cell.p99_micros = static_cast<double>(p99);
  cell.avg_group = stats.write_groups == 0
                       ? 0
                       : static_cast<double>(stats.grouped_writes) /
                             static_cast<double>(stats.write_groups);
  cell.wal_syncs = stats.wal_syncs;
  return cell;
}

void RunWriteThroughput() {
  PrintBanner("Multi-writer write throughput", "group commit",
              "grouping concurrent WAL commits into one record + one sync "
              "scales aggregate sync-write throughput with writer count");

  std::printf("%8s %14s %14s %9s %12s %12s %10s\n", "writers", "sync ops/s",
              "group ops/s", "speedup", "p99 sync us", "p99 group us",
              "avg group");
  for (int threads : {1, 4, 8, 16}) {
    WriteCell sync_cell = RunWriters(threads, /*group_commit=*/false);
    WriteCell group_cell = RunWriters(threads, /*group_commit=*/true);
    double speedup = sync_cell.ops_per_sec == 0
                         ? 0
                         : group_cell.ops_per_sec / sync_cell.ops_per_sec;
    std::printf("%8d %14.0f %14.0f %8.2fx %12.0f %12.0f %10.1f\n", threads,
                sync_cell.ops_per_sec, group_cell.ops_per_sec, speedup,
                sync_cell.p99_micros, group_cell.p99_micros,
                group_cell.avg_group);
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Key-range shard scaling: concurrent sync writers vs shard count.
//
// Each cell opens a ShardedDB whose N shards split a uniform 100k-key space
// evenly, on a simulated device whose WAL sync latency is *realized*
// (threads genuinely sleep through the 100 us device flush). With one shard
// every sync Put queues behind a single WAL leader; with N shards, writers
// that land on different shards sync their independent WALs concurrently,
// so aggregate sync-write throughput should scale toward min(writers, N).
//
// Throughput here is WALL-clock ops/s, not simulated ops/s: SimClock::Charge
// is a global accumulator that sums every thread's charged latency, so
// simulated time cannot show overlap — wall time with realized sleeps can.
// The group-commit rows show the two optimisations compose: per-shard
// leaders still batch concurrent committers while shards sync in parallel.
// ---------------------------------------------------------------------------

/// xorshift64: cheap per-thread key picker, no shared RNG state.
inline uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

constexpr int kShardKeySpace = 100000;

double RunShardWriters(int threads, int shards, bool group_commit) {
  SimClock clock;
  MemEnvOptions env_opts;
  env_opts.sync_latency_micros = 100;  // one realized device flush
  env_opts.realize_latency = true;
  auto env = NewMemEnv(&clock, env_opts);

  lsm::Options options;
  options.env = env.get();
  options.enable_group_commit = group_commit;
  for (int b = 1; b < shards; b++) {
    char boundary[16];
    std::snprintf(boundary, sizeof(boundary), "k%05d",
                  b * kShardKeySpace / shards);
    options.shard_boundaries.emplace_back(boundary);
  }
  std::unique_ptr<lsm::ShardedDB> db;
  if (!lsm::ShardedDB::Open(options, "/ss", &db).ok()) std::abort();

  constexpr int kWritesPerThread = 500;
  const std::string value(100, 'v');
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      lsm::WriteOptions sync_write;
      sync_write.sync = true;
      uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t);
      char key[32];
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kWritesPerThread; i++) {
        // Uniform random keys spread every writer across every shard, so no
        // accidental writer->shard affinity inflates the scaling.
        std::snprintf(key, sizeof(key), "k%05d",
                      static_cast<int>(NextRand(&rng) % kShardKeySpace));
        if (!db->Put(sync_write, Slice(key), Slice(value)).ok()) std::abort();
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  uint64_t start = SystemClock::Default()->NowMicros();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;

  double total = static_cast<double>(threads) * kWritesPerThread;
  return elapsed == 0 ? 0 : total / (static_cast<double>(elapsed) / 1e6);
}

void RunShardScale() {
  PrintBanner("Shard scaling: concurrent sync writers vs key-range shards",
              "shardscale",
              "independent per-shard WAL leaders overlap their realized "
              "device syncs, so aggregate sync-write throughput scales "
              "toward min(writers, shards)");

  constexpr int kTrials = 3;
  for (bool group_commit : {false, true}) {
    std::printf("%s writes (realized 100 us WAL sync)\n",
                group_commit ? "group-commit" : "sync");
    std::printf("%8s %16s %16s %16s %9s\n", "writers", "1 shard ops/s",
                "2 shards ops/s", "4 shards ops/s", "4v1");
    for (int threads : {1, 2, 4, 8}) {
      double best[3] = {0, 0, 0};
      const int shard_counts[3] = {1, 2, 4};
      // Interleave trials across shard counts so transient machine noise
      // cannot land entirely in one column.
      for (int t = 0; t < kTrials; t++) {
        for (int c = 0; c < 3; c++) {
          best[c] = std::max(
              best[c], RunShardWriters(threads, shard_counts[c], group_commit));
        }
      }
      std::printf("%8d %16.0f %16.0f %16.0f %8.2fx\n", threads, best[0],
                  best[1], best[2], best[0] == 0 ? 0 : best[2] / best[0]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Per-shard range-cache budget: global even split vs traffic-weighted
// leases (ControllerOptions::enable_shard_leases).
//
// A sharded range cache with a hot key range concentrated in ONE shard is
// the case the leases target: an even split strands 3/4 of the range budget
// in shards nobody scans, while the lease refresh (traffic x unmet-demand
// weighted, every window) hands the hot shard most of the budget. The
// boundary and admission knobs are frozen (enable_partitioning =
// enable_admission = online_learning = false) so the ONLY difference
// between the two columns is how the same range budget is apportioned.
// 90% of scans start in a 1000-key subrange of shard 2, 10% are uniform.
// ---------------------------------------------------------------------------

struct LeaseCell {
  double hit_rate;       // range-cache hit rate over the measured scans
  double scans_per_sec;  // simulated-time scan throughput
  double hot_share;      // hot shard's fraction of the range budget
};

LeaseCell RunLeaseCell(bool leases) {
  SimClock clock;
  auto env = NewMemEnv(&clock);

  lsm::Options lsm_options;
  lsm_options.env = env.get();
  lsm_options.enable_wal = false;
  lsm_options.block_size = 4 * 1024;

  core::AdCacheOptions opts;
  opts.cache_budget = 1 * 1024 * 1024;
  opts.initial_range_ratio = 0.5;
  opts.controller.enable_partitioning = false;
  opts.controller.enable_admission = false;
  opts.controller.online_learning = false;
  opts.controller.pretrain_heuristic = false;
  opts.controller.window_size = 1000;
  opts.controller.enable_shard_leases = leases;
  char boundary[16];
  for (int i = 1; i < 4; i++) {
    std::snprintf(boundary, sizeof(boundary), "key%06d", i * 2500);
    opts.range_shard_boundaries.emplace_back(boundary);
  }

  std::unique_ptr<core::AdCacheStore> store;
  if (!core::AdCacheStore::Open(opts, lsm_options, "/lease", &store).ok()) {
    std::abort();
  }

  constexpr int kKeys = 10000;
  const std::string value(100, 'v');
  char key[32];
  for (int i = 0; i < kKeys; i++) {
    std::snprintf(key, sizeof(key), "key%06d", i);
    if (!store->Put(Slice(key), Slice(value)).ok()) std::abort();
  }
  if (!store->db()->FlushMemTable().ok()) std::abort();

  uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::vector<KvPair> results;
  auto run_scans = [&](int count) {
    for (int i = 0; i < count; i++) {
      uint64_t r = NextRand(&rng);
      int start = (r % 10 != 0)
                      ? 5000 + static_cast<int>((r >> 8) % 1000)  // hot
                      : static_cast<int>((r >> 8) % kKeys);       // uniform
      std::snprintf(key, sizeof(key), "key%06d", start);
      results.clear();
      if (!store->Scan(Slice(key), 20, &results).ok()) std::abort();
    }
  };

  // Warm up across several windows so the lease EWMAs converge.
  run_scans(8000);

  const ShardedRangeCache* rc = store->dynamic_cache()->range_cache();
  uint64_t hits0 = rc->hits(), misses0 = rc->misses();
  uint64_t sim0 = clock.NowMicros();
  constexpr int kMeasuredScans = 10000;
  run_scans(kMeasuredScans);
  uint64_t sim_elapsed = clock.NowMicros() - sim0;
  uint64_t hits = rc->hits() - hits0;
  uint64_t misses = rc->misses() - misses0;

  size_t range_total = 0;
  for (size_t s = 0; s < rc->num_shards(); s++) {
    range_total += rc->shard(s)->GetCapacity();
  }
  LeaseCell cell;
  cell.hit_rate = hits + misses == 0
                      ? 0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
  cell.scans_per_sec =
      sim_elapsed == 0
          ? 0
          : kMeasuredScans / (static_cast<double>(sim_elapsed) / 1e6);
  cell.hot_share = range_total == 0
                       ? 0
                       : static_cast<double>(rc->shard(2)->GetCapacity()) /
                             static_cast<double>(range_total);
  return cell;
}

void RunShardLeases() {
  PrintBanner("Range-cache budget: even split vs per-shard leases",
              "shardleases",
              "traffic-weighted leases concentrate the range budget in the "
              "shard the workload actually scans, raising hit rate over a "
              "global even split at identical total budget");

  std::printf("%-12s %12s %14s %16s\n", "split", "hit rate", "scans/s (sim)",
              "hot shard share");
  LeaseCell even = RunLeaseCell(/*leases=*/false);
  LeaseCell leased = RunLeaseCell(/*leases=*/true);
  std::printf("%-12s %11.1f%% %14.0f %15.1f%%\n", "even (global)",
              even.hit_rate * 100, even.scans_per_sec, even.hot_share * 100);
  std::printf("%-12s %11.1f%% %14.0f %15.1f%%\n", "leases",
              leased.hit_rate * 100, leased.scans_per_sec,
              leased.hot_share * 100);
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// Multi-reader read throughput: mutex-snapshot baseline vs lock-free
// SuperVersion acquisition.
//
// A cache-resident dataset (everything in the memtable / block cache, no
// realized device latency) makes the lookup itself cheap, so per-read
// *overhead* dominates. The "mutex" column reproduces the pre-SuperVersion
// read path end to end: a DB-mutex acquisition plus a heap-allocated
// snapshot with one ref/unref per memtable (Options::mutex_read_snapshot)
// and the copying std::string return. The "lockfree" column is the new
// path: thread-local cached SuperVersion (one uncontended atomic exchange +
// a generation check) and a pinned zero-copy PinnableSlice return. Keys are
// pre-generated outside the timed loop so the columns compare read paths,
// not key formatting. Reported throughput is aggregate wall-clock ops/s;
// on a single-core host the threads time-slice, so the columns measure
// per-op overhead under contention, not parallel speedup.
// ---------------------------------------------------------------------------

constexpr int kReadKeys = 2000;
constexpr int kReadValueSize = 1024;  // paper workloads use ~1 KB values

std::vector<std::string> MakeReadKeys() {
  std::vector<std::string> keys;
  keys.reserve(kReadKeys);
  char key[32];
  for (int i = 0; i < kReadKeys; i++) {
    std::snprintf(key, sizeof(key), "key-%06d", i);
    keys.emplace_back(key);
  }
  return keys;
}

std::unique_ptr<lsm::DB> OpenReadDb(Env* env, bool mutex_baseline,
                                    const char* name) {
  lsm::Options options;
  options.env = env;
  options.enable_wal = false;
  options.memtable_size = 8 * 1024 * 1024;  // dataset stays memtable-resident
  options.mutex_read_snapshot = mutex_baseline;
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, name, &db).ok()) std::abort();
  std::string value(kReadValueSize, 'v');
  char key[32];
  for (int i = 0; i < kReadKeys; i++) {
    std::snprintf(key, sizeof(key), "key-%06d", i);
    if (!db->Put(lsm::WriteOptions(), Slice(key), Slice(value)).ok()) {
      std::abort();
    }
  }
  return db;
}

double RunPointReaders(int threads, bool mutex_baseline) {
  SimClock clock;
  auto env = NewMemEnv(&clock);
  auto db = OpenReadDb(env.get(), mutex_baseline, "/rd");
  const std::vector<std::string> keys = MakeReadKeys();

  constexpr int kOpsPerThread = 100000;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t local = 0;
      for (int i = 0; i < kOpsPerThread; i++) {
        const std::string& key = keys[NextRand(&rng) % kReadKeys];
        if (mutex_baseline) {
          // Seed-era API: the value is copied out into a fresh string.
          std::string value;
          if (!db->Get(lsm::ReadOptions(), Slice(key), &value).ok()) {
            std::abort();
          }
          local += value.size();
        } else {
          PinnableSlice value;
          if (!db->Get(lsm::ReadOptions(), Slice(key), &value).ok()) {
            std::abort();
          }
          local += value.size();
        }
      }
      sink.fetch_add(local);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  uint64_t start = SystemClock::Default()->NowMicros();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (sink.load() == 0) std::abort();  // keep reads observable
  double total_ops = static_cast<double>(threads) * kOpsPerThread;
  return elapsed == 0 ? 0 : total_ops / (static_cast<double>(elapsed) / 1e6);
}

double RunMixedReadWrite(int threads, bool mutex_baseline) {
  SimClock clock;
  auto env = NewMemEnv(&clock);
  auto db = OpenReadDb(env.get(), mutex_baseline, "/mx");
  const std::vector<std::string> keys = MakeReadKeys();

  constexpr int kOpsPerThread = 20000;
  const std::string put_value(kReadValueSize, 'w');
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0xda942042e4dd58b5ull + static_cast<uint64_t>(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t local = 0;
      for (int i = 0; i < kOpsPerThread; i++) {
        const std::string& key = keys[NextRand(&rng) % kReadKeys];
        if ((i & 1) == 0) {
          if (mutex_baseline) {
            std::string v;
            Status s = db->Get(lsm::ReadOptions(), Slice(key), &v);
            if (!s.ok() && !s.IsNotFound()) std::abort();
            local += v.size();
          } else {
            PinnableSlice v;
            Status s = db->Get(lsm::ReadOptions(), Slice(key), &v);
            if (!s.ok() && !s.IsNotFound()) std::abort();
            local += v.size();
          }
        } else {
          if (!db->Put(lsm::WriteOptions(), Slice(key),
                       Slice(put_value)).ok()) {
            std::abort();
          }
          local++;
        }
      }
      sink.fetch_add(local);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  uint64_t start = SystemClock::Default()->NowMicros();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (sink.load() == 0) std::abort();
  double total_ops = static_cast<double>(threads) * kOpsPerThread;
  return elapsed == 0 ? 0 : total_ops / (static_cast<double>(elapsed) / 1e6);
}

/// Isolates read-state acquisition + release: a Get for a key ordered below
/// the whole keyspace makes the memtable probe short-circuit at the first
/// node, so nearly all of the per-op cost is the part the two read paths
/// implement differently (mutex + snapshot allocation + per-memtable refs
/// vs thread-local exchange + generation check).
double RunAcquisitionOnly(int threads, bool mutex_baseline) {
  SimClock clock;
  auto env = NewMemEnv(&clock);
  auto db = OpenReadDb(env.get(), mutex_baseline, "/aq");

  constexpr int kOpsPerThread = 150000;
  const std::string absent_key("a");  // sorts before every "key-..." entry
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t local = 0;
      for (int i = 0; i < kOpsPerThread; i++) {
        if (mutex_baseline) {
          std::string v;
          Status s = db->Get(lsm::ReadOptions(), Slice(absent_key), &v);
          if (!s.IsNotFound()) std::abort();
        } else {
          PinnableSlice v;
          Status s = db->Get(lsm::ReadOptions(), Slice(absent_key), &v);
          if (!s.IsNotFound()) std::abort();
        }
        local++;
      }
      sink.fetch_add(local);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  uint64_t start = SystemClock::Default()->NowMicros();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (sink.load() == 0) std::abort();
  double total_ops = static_cast<double>(threads) * kOpsPerThread;
  return elapsed == 0 ? 0 : total_ops / (static_cast<double>(elapsed) / 1e6);
}

void RunReadScaling() {
  PrintBanner("Multi-reader read throughput", "lock-free read path",
              "SuperVersion acquisition via thread-local cached refs removes "
              "the per-read DB mutex + snapshot allocation the baseline pays");
  std::printf(
      "note: on a single-core host threads time-slice, so the mutex never\n"
      "exhibits cross-core contention or cacheline bouncing; speedups here\n"
      "reflect per-op overhead removed and are a lower bound on multi-core\n"
      "gains.\n\n");

  std::printf("point lookups (cache-resident, 100%% reads)\n");
  std::printf("%8s %16s %16s %9s\n", "readers", "mutex ops/s",
              "lockfree ops/s", "speedup");
  for (int threads : {1, 2, 4, 8}) {
    double mtx = RunPointReaders(threads, /*mutex_baseline=*/true);
    double lf = RunPointReaders(threads, /*mutex_baseline=*/false);
    std::printf("%8d %16.0f %16.0f %8.2fx\n", threads, mtx, lf,
                mtx == 0 ? 0 : lf / mtx);
    std::fflush(stdout);
  }

  std::printf("\nmixed workload (50%% point reads / 50%% writes)\n");
  std::printf("%8s %16s %16s %9s\n", "threads", "mutex ops/s",
              "lockfree ops/s", "speedup");
  for (int threads : {1, 2, 4, 8}) {
    double mtx = RunMixedReadWrite(threads, /*mutex_baseline=*/true);
    double lf = RunMixedReadWrite(threads, /*mutex_baseline=*/false);
    std::printf("%8d %16.0f %16.0f %8.2fx\n", threads, mtx, lf,
                mtx == 0 ? 0 : lf / mtx);
    std::fflush(stdout);
  }

  std::printf("\nread-state acquisition overhead (absent-key point Get)\n");
  std::printf("%8s %16s %16s %9s\n", "readers", "mutex ops/s",
              "lockfree ops/s", "speedup");
  for (int threads : {1, 2, 4, 8}) {
    double mtx = RunAcquisitionOnly(threads, /*mutex_baseline=*/true);
    double lf = RunAcquisitionOnly(threads, /*mutex_baseline=*/false);
    std::printf("%8d %16.0f %16.0f %8.2fx\n", threads, mtx, lf,
                mtx == 0 ? 0 : lf / mtx);
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Batched point lookups: Get loop vs MultiGet.
//
// An SST-resident dataset with small values (many entries per 4 KB block)
// and a warm block cache isolates per-lookup CPU overhead: the Get loop
// pays a SuperVersion acquisition, an index seek, a block-cache lookup and
// a block-iterator construction PER KEY, while MultiGet pays the first once
// per batch and the rest once per DISTINCT block. Unscrambled Zipfian keys
// cluster the hot ranks at the low end of the keyspace, so sorted batches
// land in few blocks (and repeat keys dedup) — the favourable case batching
// targets; uniform keys spread across blocks and bound the win from below.
// ---------------------------------------------------------------------------

constexpr uint64_t kMgKeys = 20000;
constexpr size_t kMgValueSize = 64;
constexpr size_t kMgOps = 200000;

std::unique_ptr<lsm::DB> OpenMultiGetDb(Env* env,
                                        std::shared_ptr<Cache> cache,
                                        std::vector<std::string>* keys) {
  lsm::Options options;
  options.env = env;
  options.enable_wal = false;
  options.block_size = 4 * 1024;
  options.memtable_size = 8 * 1024 * 1024;  // one flush -> few L0 files
  options.block_cache = std::move(cache);
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, "/mg", &db).ok()) std::abort();
  std::string value(kMgValueSize, 'v');
  char key[32];
  keys->reserve(kMgKeys);
  for (uint64_t i = 0; i < kMgKeys; i++) {
    std::snprintf(key, sizeof(key), "key-%08llu",
                  static_cast<unsigned long long>(i));
    keys->emplace_back(key);
    if (!db->Put(lsm::WriteOptions(), Slice(key), Slice(value)).ok()) {
      std::abort();
    }
  }
  if (!db->FlushMemTable().ok()) std::abort();
  // Warm the block cache so both columns measure lookup CPU, not IO.
  PinnableSlice v;
  for (uint64_t i = 0; i < kMgKeys; i++) {
    if (!db->Get(lsm::ReadOptions(), Slice((*keys)[i]), &v).ok()) std::abort();
    v.Reset();
  }
  return db;
}

std::vector<uint32_t> MakePicks(bool zipfian) {
  std::vector<uint32_t> picks(kMgOps);
  if (zipfian) {
    workload::ZipfianGenerator gen(kMgKeys, 0.99, 7);
    for (auto& p : picks) p = static_cast<uint32_t>(gen.Next());
  } else {
    workload::UniformGenerator gen(kMgKeys, 7);
    for (auto& p : picks) p = static_cast<uint32_t>(gen.Next());
  }
  return picks;
}

/// Ops/s of a plain Get loop over `picks`.
double RunGetLoop(lsm::DB* db, const std::vector<std::string>& keys,
                  const std::vector<uint32_t>& picks) {
  uint64_t start = SystemClock::Default()->NowMicros();
  PinnableSlice value;
  uint64_t sink = 0;
  for (uint32_t p : picks) {
    if (!db->Get(lsm::ReadOptions(), Slice(keys[p]), &value).ok()) {
      std::abort();
    }
    sink += value.size();
    value.Reset();
  }
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (sink != picks.size() * kMgValueSize) std::abort();
  return elapsed == 0 ? 0
                      : static_cast<double>(picks.size()) /
                            (static_cast<double>(elapsed) / 1e6);
}

/// Ops/s of the same picks issued through MultiGet in batches of `batch`.
double RunMultiGetLoop(lsm::DB* db, const std::vector<std::string>& keys,
                       const std::vector<uint32_t>& picks, size_t batch) {
  std::vector<Slice> batch_keys(batch);
  std::vector<PinnableSlice> values(batch);
  std::vector<Status> statuses(batch);
  uint64_t start = SystemClock::Default()->NowMicros();
  uint64_t sink = 0;
  for (size_t i = 0; i < picks.size(); i += batch) {
    size_t m = std::min(batch, picks.size() - i);
    for (size_t j = 0; j < m; j++) batch_keys[j] = Slice(keys[picks[i + j]]);
    db->MultiGet(lsm::ReadOptions(), m, batch_keys.data(), values.data(),
                 statuses.data());
    for (size_t j = 0; j < m; j++) {
      if (!statuses[j].ok()) std::abort();
      sink += values[j].size();
      values[j].Reset();
    }
  }
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (sink != picks.size() * kMgValueSize) std::abort();
  return elapsed == 0 ? 0
                      : static_cast<double>(picks.size()) /
                            (static_cast<double>(elapsed) / 1e6);
}

void RunMultiGetBench() {
  PrintBanner("Batched point lookups: Get loop vs MultiGet", "MultiGet",
              "one SuperVersion + per-distinct-block work per batch beats "
              "per-key overhead; skewed sorted batches coalesce into few "
              "blocks");

  SimClock clock;
  auto env = NewMemEnv(&clock);
  auto cache = NewLRUCache(64 * 1024 * 1024);
  std::vector<std::string> keys;
  auto db = OpenMultiGetDb(env.get(), cache, &keys);

  std::printf("%-8s %6s %14s %14s %9s\n", "dist", "batch", "get ops/s",
              "multiget ops/s", "speedup");
  // Alternate get/multiget trials within each cell and keep the best of
  // each: a single up-front Get measurement would bake whatever transient
  // machine noise it hit into every row's denominator.
  constexpr int kTrials = 3;
  for (bool zipfian : {false, true}) {
    const char* dist = zipfian ? "zipfian" : "uniform";
    std::vector<uint32_t> picks = MakePicks(zipfian);
    for (size_t batch : {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
      double get_loop = 0, mg = 0;
      for (int t = 0; t < kTrials; t++) {
        get_loop = std::max(get_loop, RunGetLoop(db.get(), keys, picks));
        mg = std::max(mg, RunMultiGetLoop(db.get(), keys, picks, batch));
      }
      std::printf("%-8s %6zu %14.0f %14.0f %8.2fx\n", dist, batch, get_loop,
                  mg, get_loop == 0 ? 0 : mg / get_loop);
      std::fflush(stdout);
    }
  }
}

// ---------------------------------------------------------------------------
// Cache backend scaling: sharded-mutex LRU vs lock-free CLOCK.
//
// Same cache-resident dataset as the MultiGet section, but the variable is
// the block-cache backend: every Get pays one block-cache Lookup+Release,
// and with LRU both take the shard mutex (plus an LRU-list splice), so the
// cache is the last lock on the steady-state read path. The clock cache
// replaces that with one fetch_add per pin. The churn variant has a
// background thread retargeting SetCapacity the way the RL dynamic-boundary
// controller does, with the budget dropping below the working set so both
// backends evict continuously while readers run.
// ---------------------------------------------------------------------------

constexpr size_t kScaleCacheBytes = 64 * 1024 * 1024;

/// Aggregate ops/s of `threads` readers over zipfian picks against `db`.
/// `batch` == 1 issues plain Gets, larger batches go through MultiGet.
/// When `churn_cache` is non-null, a background thread toggles its capacity
/// between 100% and ~2% of kScaleCacheBytes for the whole measurement.
double RunCacheBackendReaders(lsm::DB* db, const std::vector<std::string>& keys,
                              int threads, size_t batch, Cache* churn_cache) {
  constexpr size_t kTotalOps = 60000;  // aggregate, constant across cells
  std::vector<std::vector<uint32_t>> picks(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workload::ZipfianGenerator gen(kMgKeys, 0.99, 7 + t);
    picks[t].resize(kTotalOps / static_cast<size_t>(threads));
    for (auto& p : picks[t]) p = static_cast<uint32_t>(gen.Next());
  }
  std::atomic<bool> stop{false};
  std::thread churner;
  if (churn_cache != nullptr) {
    churner = std::thread([churn_cache, &stop] {
      bool small = true;
      while (!stop.load(std::memory_order_relaxed)) {
        churn_cache->SetCapacity(small ? kScaleCacheBytes / 48
                                       : kScaleCacheBytes);
        small = !small;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      churn_cache->SetCapacity(kScaleCacheBytes);
    });
  }
  auto reader = [db, &keys, batch](const std::vector<uint32_t>& my_picks) {
    if (batch <= 1) {
      PinnableSlice value;
      for (uint32_t p : my_picks) {
        if (!db->Get(lsm::ReadOptions(), Slice(keys[p]), &value).ok()) {
          std::abort();
        }
        value.Reset();
      }
      return;
    }
    std::vector<Slice> batch_keys(batch);
    std::vector<PinnableSlice> values(batch);
    std::vector<Status> statuses(batch);
    for (size_t i = 0; i < my_picks.size(); i += batch) {
      size_t m = std::min(batch, my_picks.size() - i);
      for (size_t j = 0; j < m; j++) {
        batch_keys[j] = Slice(keys[my_picks[i + j]]);
      }
      db->MultiGet(lsm::ReadOptions(), m, batch_keys.data(), values.data(),
                   statuses.data());
      for (size_t j = 0; j < m; j++) {
        if (!statuses[j].ok()) std::abort();
        values[j].Reset();
      }
    }
  };
  uint64_t start = SystemClock::Default()->NowMicros();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back(reader, std::cref(picks[t]));
  }
  for (auto& w : workers) w.join();
  uint64_t elapsed = SystemClock::Default()->NowMicros() - start;
  if (churn_cache != nullptr) {
    stop.store(true);
    churner.join();
  }
  size_t total = 0;
  for (const auto& p : picks) total += p.size();
  return elapsed == 0 ? 0
                      : static_cast<double>(total) /
                            (static_cast<double>(elapsed) / 1e6);
}

/// Resets `cache` to a known fully-warm state before a timed leg: full
/// capacity, contents dropped explicitly, then one untimed pass over every
/// key. See the interleaved-trial protocol in bench_common.h — capacity
/// churn leaves backend-dependent residue; Prune + re-warm does not.
void ResetAndRewarm(lsm::DB* db, Cache* cache,
                    const std::vector<std::string>& keys) {
  cache->SetCapacity(kScaleCacheBytes);
  cache->Prune();
  PinnableSlice v;
  for (const std::string& key : keys) {
    if (!db->Get(lsm::ReadOptions(), Slice(key), &v).ok()) std::abort();
    v.Reset();
  }
}

void RunCacheBackendScaling() {
  PrintBanner("Cache backend scaling: LRU vs lock-free CLOCK", "ClockCache",
              "a block-cache hit under LRU takes the shard mutex twice "
              "(Lookup + Release); the clock table pins with one fetch_add, "
              "so hits never serialize");
  std::printf(
      "note: single-core hosts time-slice threads, so rows measure per-op\n"
      "overhead rather than cross-core cacheline contention; multi-core\n"
      "scaling gains are strictly larger.\n\n");

  SimClock lru_clock, clk_clock;
  auto lru_env = NewMemEnv(&lru_clock);
  auto clk_env = NewMemEnv(&clk_clock);
  auto lru_cache = NewBlockCache(BlockCacheImpl::kLRU, kScaleCacheBytes);
  auto clk_cache = NewBlockCache(BlockCacheImpl::kClock, kScaleCacheBytes);
  std::vector<std::string> lru_keys, clk_keys;
  auto lru_db = OpenMultiGetDb(lru_env.get(), lru_cache, &lru_keys);
  auto clk_db = OpenMultiGetDb(clk_env.get(), clk_cache, &clk_keys);

  constexpr int kTrials = 3;
  struct Variant {
    const char* name;
    size_t batch;
    bool churn;
  };
  for (const Variant& v :
       {Variant{"Get", 1, false}, Variant{"MultiGet(32)", 32, false},
        Variant{"Get + SetCapacity churn", 1, true}}) {
    std::printf("%s, zipfian, cache-resident\n", v.name);
    std::printf("%8s %14s %14s %9s\n", "threads", "lru ops/s", "clock ops/s",
                "speedup");
    for (int threads : {1, 2, 4, 8}) {
      double lru = 0, clk = 0;
      // Interleave trials so transient machine noise cannot land entirely
      // in one backend's column. Every leg starts from the same fully-warm
      // cache state (bench_common.h protocol): without the reset, a churn
      // leg's ~2%-capacity residue would bleed into the next leg's warmup.
      for (int t = 0; t < kTrials; t++) {
        ResetAndRewarm(lru_db.get(), lru_cache.get(), lru_keys);
        lru = std::max(lru, RunCacheBackendReaders(
                                lru_db.get(), lru_keys, threads, v.batch,
                                v.churn ? lru_cache.get() : nullptr));
        ResetAndRewarm(clk_db.get(), clk_cache.get(), clk_keys);
        clk = std::max(clk, RunCacheBackendReaders(
                                clk_db.get(), clk_keys, threads, v.batch,
                                v.churn ? clk_cache.get() : nullptr));
      }
      std::printf("%8d %14.0f %14.0f %8.2fx\n", threads, lru, clk,
                  lru == 0 ? 0 : clk / lru);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Secondary (flash) cache tier: DRAM-constrained zipfian point reads.
//
// DRAM is capped at ~12% of the block working set, so most of the zipfian
// tail misses the block cache. The disk env charges 80us per block read;
// the flash env backing the slab cache charges 16us (the h_est model's
// flash_read_cost = 0.2). Three tiers per backend: no secondary (every
// DRAM miss pays disk), demote-everything (threshold 0: every eviction is
// appended to the slab log, so one-touch tail blocks churn the GC and
// dilute the flash population), and admission-gated (TinyLFU doorkeeper +
// sketch: one-touch blocks are rejected, flash keeps re-referenced blocks).
// Reported throughput is simulated-IO ops/s; the secondary hit rate is the
// tier's own hits/(hits+misses) over the measured leg.
// ---------------------------------------------------------------------------

constexpr uint64_t kSsKeys = 24000;  // 1 KB values, 4/block: ~6000 blocks
constexpr size_t kSsValueSize = 1024;
constexpr size_t kSsDramBytes = 3 * 1024 * 1024;    // ~12% of working set
constexpr size_t kSsFlashBytes = 8 * 1024 * 1024;   // flash < DRAM-miss working set
constexpr double kSsAdmissionThreshold = 0.0005;
constexpr size_t kSsWarmOps = 50000;
constexpr size_t kSsMeasuredOps = 50000;

enum class SecondTier { kNone, kDemoteAll, kAdmissionGated };

struct SecondCell {
  double ops_per_sec = 0;
  double secondary_hit_rate = 0;
};

SecondCell RunSecondScaleCell(BlockCacheImpl impl, SecondTier tier) {
  SimClock clock;
  auto disk_env = NewMemEnv(&clock);  // default 80us/block read: the "disk"
  MemEnvOptions flash_opts;
  flash_opts.read_latency_micros = 16;  // flash_read_cost = 0.2 of disk
  flash_opts.write_latency_micros = 4;
  auto flash_env = NewMemEnv(&clock, flash_opts);

  lsm::Options options;
  options.env = disk_env.get();
  options.enable_wal = false;
  options.block_size = 4 * 1024;
  options.memtable_size = 8 * 1024 * 1024;
  options.block_cache = NewBlockCache(impl, kSsDramBytes);
  std::shared_ptr<SecondaryCache> secondary;
  if (tier != SecondTier::kNone) {
    SlabSecondaryCacheOptions sopts;
    sopts.capacity = kSsFlashBytes;
    sopts.admission_threshold =
        tier == SecondTier::kAdmissionGated ? kSsAdmissionThreshold : 0.0;
    if (!NewSlabSecondaryCache(flash_env.get(), "/flash", sopts, &secondary)
             .ok()) {
      std::abort();
    }
    lsm::InstallSecondaryCache(&options, secondary);
  }
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, "/ss", &db).ok()) std::abort();

  const std::string value(kSsValueSize, 'v');
  char key[32];
  for (uint64_t i = 0; i < kSsKeys; i++) {
    std::snprintf(key, sizeof(key), "key-%08llu",
                  static_cast<unsigned long long>(i));
    if (!db->Put(lsm::WriteOptions(), Slice(key), Slice(value)).ok()) {
      std::abort();
    }
  }
  if (!db->FlushMemTable().ok()) std::abort();

  workload::ZipfianGenerator gen(kSsKeys, 0.99, 11);
  PinnableSlice v;
  auto read_one = [&] {
    std::snprintf(key, sizeof(key), "key-%08llu",
                  static_cast<unsigned long long>(gen.Next()));
    if (!db->Get(lsm::ReadOptions(), Slice(key), &v).ok()) std::abort();
    v.Reset();
  };
  // Untimed warmup: populates DRAM and, via its evictions, the flash tier.
  for (size_t i = 0; i < kSsWarmOps; i++) read_one();

  const uint64_t hits0 = secondary != nullptr ? secondary->hits() : 0;
  const uint64_t misses0 = secondary != nullptr ? secondary->misses() : 0;
  const uint64_t sim0 = clock.NowMicros();
  for (size_t i = 0; i < kSsMeasuredOps; i++) read_one();
  const uint64_t sim_elapsed = clock.NowMicros() - sim0;

  SecondCell cell;
  cell.ops_per_sec =
      sim_elapsed == 0 ? 0
                       : static_cast<double>(kSsMeasuredOps) /
                             (static_cast<double>(sim_elapsed) / 1e6);
  if (secondary != nullptr) {
    const uint64_t h = secondary->hits() - hits0;
    const uint64_t m = secondary->misses() - misses0;
    cell.secondary_hit_rate =
        h + m == 0 ? 0
                   : static_cast<double>(h) / static_cast<double>(h + m);
  }
  return cell;
}

void RunSecondScale() {
  // The env fallback must not sneak a tier into the "none" cell.
  unsetenv("ADCACHE_SECONDARY_CACHE");
  PrintBanner(
      "Secondary flash tier: DRAM capped at ~12% of the working set",
      "secondscale",
      "flash absorbs the DRAM miss tail at 0.2x disk cost; demotion "
      "admission keeps one-touch blocks out of the slab log, beating "
      "demote-everything on secondary hit rate");

  std::printf("%-8s %-12s %14s %14s %9s\n", "backend", "tier", "ops/s (sim)",
              "sec hit rate", "speedup");
  for (BlockCacheImpl impl : {BlockCacheImpl::kLRU, BlockCacheImpl::kClock}) {
    const char* backend = impl == BlockCacheImpl::kLRU ? "lru" : "clock";
    SecondCell none = RunSecondScaleCell(impl, SecondTier::kNone);
    SecondCell all = RunSecondScaleCell(impl, SecondTier::kDemoteAll);
    SecondCell gated = RunSecondScaleCell(impl, SecondTier::kAdmissionGated);
    std::printf("%-8s %-12s %14.0f %14s %8.2fx\n", backend, "none",
                none.ops_per_sec, "-", 1.0);
    std::printf("%-8s %-12s %14.0f %13.1f%% %8.2fx\n", backend, "demote-all",
                all.ops_per_sec, all.secondary_hit_rate * 100,
                none.ops_per_sec == 0 ? 0 : all.ops_per_sec / none.ops_per_sec);
    std::printf("%-8s %-12s %14.0f %13.1f%% %8.2fx\n", backend, "admission",
                gated.ops_per_sec, gated.secondary_hit_rate * 100,
                none.ops_per_sec == 0 ? 0
                                      : gated.ops_per_sec / none.ops_per_sec);
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Compaction scaling: parallel subcompactions + overlapped flush.
//
// Every cell runs a hot-shard write burst (all keys land in one shard's
// range) against a simulated device whose block I/O is *realized* (threads
// sleep 80 us per compaction block read, 20 us per block write), then
// drains the backlog with FlushMemTable + CompactAll. Realized latency is
// what lets K subcompactions show wall-clock speedup even on a single-core
// host: each subrange's merge overlaps its I/O sleeps with the others'.
// Reported per cell: compaction drain throughput as bytes-compacted/sec
// (input bytes actually merged, from MaintenanceStats.compact_read_bytes)
// alongside wall-clock drain seconds, plus writer Put p99 (wall us) and
// accumulated write-stall micros during the burst. The overlap=off rows
// restore the legacy single-flight scheduler, so the stall columns isolate
// what decoupling flush from compaction buys a stalled writer.
// Protocol per bench_common.h: trials interleave across K within a row
// block (machine noise cannot land in one column), each trial is a fresh
// instance (new SimClock + MemEnv + DB — the ResetAndRewarm equivalent for
// a store whose measured state is the LSM backlog itself), best of 3 kept.
// ---------------------------------------------------------------------------

constexpr int kCompactKeySpace = 4000;

struct CompactCell {
  double compact_mbps = 0;     // input bytes merged / total wall seconds
  double drain_seconds = 1e30; // wall seconds, burst start -> CompactAll done
  double writer_p99_micros = 1e30;
  uint64_t stall_micros = ~0ull;
  uint64_t subcompactions = 0;
};

CompactCell RunCompactScaleCell(int shards, bool overlap, int subcompactions) {
  SimClock clock;
  MemEnvOptions env_opts;
  env_opts.realize_latency = true;  // 80 us/block read, 20 us/block write
  auto env = NewMemEnv(&clock, env_opts);

  lsm::Options options;
  options.env = env.get();
  options.enable_wal = false;
  options.block_size = 4 * 1024;
  options.memtable_size = 64 * 1024;
  options.table_file_size = 32 * 1024;
  options.level1_size_base = 128 * 1024;
  options.max_subcompactions = subcompactions;
  options.overlap_flush_compaction = overlap;
  // Fixed thread budget across every cell: the pool never grows with K, so
  // the K sweep isolates range-splitting itself, not extra threads.
  options.max_background_jobs = 10;
  for (int b = 1; b < shards; b++) {
    char boundary[16];
    std::snprintf(boundary, sizeof(boundary), "k%06d",
                  b * kCompactKeySpace / shards);
    options.shard_boundaries.emplace_back(boundary);
  }
  std::unique_ptr<lsm::ShardedDB> db;
  if (!lsm::ShardedDB::Open(options, "/cs", &db).ok()) std::abort();

  // Hot-shard burst: every key falls in the FIRST shard's range, so one
  // shard absorbs the whole flush + compaction load while the others idle —
  // the case where intra-shard parallelism is the only lever left.
  constexpr int kWriters = 2;
  constexpr int kWritesPerThread = 1200;
  const int hot_span = kCompactKeySpace / (shards > 1 ? shards : 1);
  const std::string value(512, 'v');
  std::vector<std::vector<uint64_t>> lat(kWriters);

  const uint64_t start = SystemClock::Default()->NowMicros();
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t);
      auto& mine = lat[static_cast<size_t>(t)];
      mine.reserve(kWritesPerThread);
      char key[32];
      for (int i = 0; i < kWritesPerThread; i++) {
        std::snprintf(key, sizeof(key), "k%06d",
                      static_cast<int>(NextRand(&rng) %
                                       static_cast<uint64_t>(hot_span)));
        uint64_t t0 = SystemClock::Default()->NowMicros();
        if (!db->Put(lsm::WriteOptions(), Slice(key), Slice(value)).ok()) {
          std::abort();
        }
        mine.push_back(SystemClock::Default()->NowMicros() - t0);
      }
    });
  }
  for (auto& w : writers) w.join();
  if (!db->FlushMemTable().ok()) std::abort();
  if (!db->CompactAll().ok()) std::abort();
  const uint64_t elapsed = SystemClock::Default()->NowMicros() - start;

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  lsm::DB::MaintenanceStats stats = db->GetMaintenanceStats();
  CompactCell cell;
  cell.drain_seconds = static_cast<double>(elapsed) / 1e6;
  cell.compact_mbps =
      elapsed == 0 ? 0
                   : static_cast<double>(stats.compact_read_bytes) /
                         (1024.0 * 1024.0) / cell.drain_seconds;
  cell.writer_p99_micros = static_cast<double>(
      all[std::min(all.size() - 1, static_cast<size_t>(0.99 * all.size()))]);
  cell.stall_micros = stats.stall_micros;
  cell.subcompactions = stats.subcompactions;
  return cell;
}

void RunCompactScale() {
  PrintBanner("Compaction scaling: subcompactions x overlapped flush",
              "compactscale",
              "splitting one compaction into K key-subrange merges overlaps "
              "realized block I/O, multiplying drain throughput; decoupling "
              "flush from compaction cuts writer stalls on a hot shard");

  constexpr int kTrials = 3;
  const int ks[4] = {1, 2, 4, 8};
  for (int shards : {1, 4}) {
    for (bool overlap : {true, false}) {
      std::printf("%d shard%s, hot-shard burst, overlap %s\n", shards,
                  shards > 1 ? "s" : "", overlap ? "on" : "off");
      std::printf("%4s %14s %10s %12s %12s %9s %8s\n", "K", "compact MB/s",
                  "drain s", "writer p99", "stall ms", "subcomp", "vs K=1");
      CompactCell best[4];
      // Trials interleave across K so transient machine noise cannot land
      // entirely in one row; every trial is a fresh instance.
      for (int t = 0; t < kTrials; t++) {
        for (int c = 0; c < 4; c++) {
          CompactCell cell = RunCompactScaleCell(shards, overlap, ks[c]);
          best[c].compact_mbps =
              std::max(best[c].compact_mbps, cell.compact_mbps);
          best[c].drain_seconds =
              std::min(best[c].drain_seconds, cell.drain_seconds);
          best[c].writer_p99_micros =
              std::min(best[c].writer_p99_micros, cell.writer_p99_micros);
          best[c].stall_micros =
              std::min(best[c].stall_micros, cell.stall_micros);
          best[c].subcompactions = cell.subcompactions;
        }
      }
      const double base_mbps = best[0].compact_mbps;
      for (int c = 0; c < 4; c++) {
        std::printf("%4d %14.1f %10.2f %12.0f %12.1f %9llu %7.2fx\n", ks[c],
                    best[c].compact_mbps, best[c].drain_seconds,
                    best[c].writer_p99_micros,
                    static_cast<double>(best[c].stall_micros) / 1e3,
                    static_cast<unsigned long long>(best[c].subcompactions),
                    base_mbps == 0 ? 0 : best[c].compact_mbps / base_mbps);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  // ADCACHE_BENCH_SECTION=read|write|training|multiget|cachescale|shardscale
  // |shardleases|secondscale|compactscale runs one section alone.
  const std::string section =
      adcache::util::OptionsFromEnv::String("ADCACHE_BENCH_SECTION")
          .value_or("");
  if (section.empty() || section == "cachescale") {
    adcache::bench::RunCacheBackendScaling();
  }
  if (section.empty() || section == "secondscale") {
    adcache::bench::RunSecondScale();
  }
  if (section.empty() || section == "multiget") {
    adcache::bench::RunMultiGetBench();
  }
  if (section.empty() || section == "read") adcache::bench::RunReadScaling();
  if (section.empty() || section == "write") {
    adcache::bench::RunWriteThroughput();
  }
  if (section.empty() || section == "shardscale") {
    adcache::bench::RunShardScale();
  }
  if (section.empty() || section == "compactscale") {
    adcache::bench::RunCompactScale();
  }
  if (section.empty() || section == "shardleases") {
    adcache::bench::RunShardLeases();
  }
  if (section.empty() || section == "training") adcache::bench::Run();
  return 0;
}
