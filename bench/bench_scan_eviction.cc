// Reproduces Figure 6 of the AdCache paper: the cache-footprint of a single
// scan under block-based vs result-based caching. With B = 4 entries per
// block (4 KB blocks, 1 KB values), a scan of length 16 would ideally touch
// l/B = 4 blocks, but because the scanned range overlaps every sorted run
// it touches roughly one block per run extra; a result cache admits all l
// entries unless partial admission caps it.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cache/range_cache.h"
#include "core/admission.h"
#include "util/random.h"

namespace adcache::bench {
namespace {

void Run() {
  PrintBanner("Cache footprint of a single scan", "Figure 6",
              "a scan of 16 touches ~2x its ideal 4 blocks (one per "
              "overlapping run); a scan of 64 inserts 64 result entries "
              "unless partial admission caps it");

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.001;  // effectively uncached: count raw touches

  BenchInstance instance("block", config);
  if (!instance.Load().ok()) std::abort();
  // Create overlapping sorted runs: update a slice of the keyspace so L0
  // runs overlap the older data below.
  auto* store = instance.store();
  for (uint64_t i = 0; i < config.num_keys; i += 3) {
    store->Put(Slice(instance.keys().KeyAt(i)),
               Slice(instance.keys().ValueFor(i)));
  }
  lsm::DB::LsmShape shape = store->db()->GetLsmShape();
  std::printf("LSM shape: %d non-empty levels, %d sorted runs, B=%.1f "
              "entries/block\n\n",
              shape.num_levels_nonempty, shape.sorted_runs,
              shape.entries_per_block);

  std::printf("%-12s %14s %14s %18s\n", "scan_len", "blocks_touched",
              "ideal (l/B)", "overhead_factor");
  for (uint64_t len : {4u, 16u, 64u}) {
    const int kScans = 200;
    uint64_t before = store->GetCacheStats().block_reads;
    std::vector<KvPair> results;
    Random rng(99);
    for (int i = 0; i < kScans; i++) {
      uint64_t start = rng.Uniform(config.num_keys - len - 1);
      store->Scan(Slice(instance.keys().KeyAt(start)), len, &results);
    }
    double touched = static_cast<double>(store->GetCacheStats().block_reads -
                                         before) /
                     kScans;
    double ideal = static_cast<double>(len) /
                   (shape.entries_per_block > 0 ? shape.entries_per_block : 4);
    std::printf("%-12llu %14.1f %14.1f %17.2fx\n",
                static_cast<unsigned long long>(len), touched, ideal,
                ideal > 0 ? touched / ideal : 0);
  }

  std::printf("\nResult-cache admission for one scan (range cache entries "
              "inserted):\n");
  std::printf("%-12s %18s %26s\n", "scan_len", "all_or_nothing",
              "partial (a=16, b=0.5)");
  core::ScanAdmissionController partial;
  partial.Set(16.0, 0.5);
  for (uint64_t len : {4u, 16u, 64u}) {
    std::printf("%-12llu %18llu %26llu\n",
                static_cast<unsigned long long>(len),
                static_cast<unsigned long long>(len),
                static_cast<unsigned long long>(partial.AdmitCount(len)));
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
