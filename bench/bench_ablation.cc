// Reproduces Figure 11(b) of the AdCache paper: the ablation study under a
// long-scan workload. Paper ordering (hit rate, low to high): Range Cache <
// AdCache with admission control only < AdCache with adaptive partitioning
// only < full AdCache.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  const std::vector<std::pair<std::string, const char*>> variants = {
      {"range", "Range Cache (baseline)"},
      {"adcache_admission_only", "AdCache: admission control only"},
      {"adcache_partition_only", "AdCache: adaptive partitioning only"},
      {"adcache", "AdCache: full"},
  };

  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  config.ops = 15000;

  PrintBanner("Ablation study on a long-scan workload", "Figure 11(b)",
              "range < +admission (~+11% rel.) < +partitioning (~+55% rel.) "
              "< full AdCache (~+61% rel.)");

  workload::Phase phase = workload::LongScanWorkload(config.ops);

  double baseline_hit = 0;
  std::printf("%-44s %10s %14s %16s\n", "variant", "hit_rate",
              "rel_vs_range", "sst_block_reads");
  for (const auto& [strategy, label] : variants) {
    workload::PhaseResult r = RunCell(strategy, config, phase);
    if (strategy == "range") baseline_hit = r.hit_rate;
    double rel = baseline_hit == 0
                     ? 0
                     : (r.hit_rate - baseline_hit) / baseline_hit * 100;
    std::printf("%-44s %10.3f %13.1f%% %16llu\n", label, r.hit_rate, rel,
                static_cast<unsigned long long>(r.block_reads));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
