// Reproduces Figure 7 of the AdCache paper: hit rate of six caching
// strategies under four static workloads (point lookup, short scan,
// balanced, long scan) across cache sizes of 5/10/25/50% of the database.
// Also prints the §5.2 headline deltas (AdCache vs block cache hit rate and
// SST-read reduction).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

void Run() {
  const std::vector<std::string> strategies = {
      "block", "kv", "range", "range_lecar", "range_cacheus", "adcache"};
  const std::vector<double> cache_fractions = {0.05, 0.10, 0.25, 0.50};

  BenchConfig base;
  base.num_keys = 8000;
  base.value_size = 1000;
  base.ops = 15000;

  struct WorkloadCase {
    const char* figure;
    workload::Phase phase;
  };
  const std::vector<WorkloadCase> cases = {
      {"Fig7a", workload::PointLookupWorkload(base.ops)},
      {"Fig7b", workload::ShortScanWorkload(base.ops)},
      {"Fig7c", workload::BalancedWorkload(base.ops)},
      {"Fig7d", workload::LongScanWorkload(base.ops)},
  };

  PrintBanner("Static workloads: hit rate vs cache size", "Figure 7",
              "block cache wins read-only/short-scan; AdCache best or tied "
              "everywhere; KV cache useless for scans");

  // results[figure][strategy][fraction] = (hit rate, block reads)
  std::map<std::string,
           std::map<std::string, std::map<double, workload::PhaseResult>>>
      results;

  for (const auto& c : cases) {
    std::printf("\n--- %s: %s ---\n", c.figure, c.phase.name.c_str());
    std::printf("%-16s", "strategy");
    for (double f : cache_fractions) std::printf("  %6.0f%%", f * 100);
    std::printf("   (hit rate per cache size)\n");
    for (const auto& strategy : strategies) {
      std::printf("%-16s", strategy.c_str());
      for (double f : cache_fractions) {
        BenchConfig config = base;
        config.cache_fraction = f;
        workload::PhaseResult r = RunCell(strategy, config, c.phase);
        results[c.figure][strategy][f] = r;
        std::printf("  %6.3f", r.hit_rate);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }

  // §5.2 headline numbers: AdCache vs RocksDB block cache.
  std::printf("\n--- Headline deltas (AdCache vs block cache) ---\n");
  std::printf("%-8s %8s %14s %16s %18s\n", "figure", "cache%",
              "hit_delta(pp)", "sst_reads_block", "sst_read_reduction");
  for (const auto& c : cases) {
    for (double f : cache_fractions) {
      const auto& ad = results[c.figure]["adcache"][f];
      const auto& bl = results[c.figure]["block"][f];
      double reduction =
          bl.block_reads == 0
              ? 0
              : 1.0 - static_cast<double>(ad.block_reads) /
                          static_cast<double>(bl.block_reads);
      std::printf("%-8s %7.0f%% %14.1f %16llu %17.1f%%\n", c.figure,
                  f * 100, (ad.hit_rate - bl.hit_rate) * 100,
                  static_cast<unsigned long long>(bl.block_reads),
                  reduction * 100);
    }
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
