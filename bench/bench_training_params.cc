// Reproduces Figure 10 of the AdCache paper: sensitivity of convergence to
// (1) the tuning window size, (2) the reward-smoothing factor alpha, and
// (3) the evolution of the learned cache parameters across a workload
// shift. The system is warmed under a point-lookup-heavy workload and then
// shifted to a short-scan-heavy workload, mirroring the paper's setup.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace adcache::bench {
namespace {

constexpr uint64_t kChunkOps = 1000;  // trace resolution
constexpr int kWarmChunks = 8;
constexpr int kShiftChunks = 24;

struct TraceConfig {
  std::string label;
  uint64_t window_size = 1000;
  double alpha = 0.9;
  bool online_learning = true;
};

struct TracePoint {
  double hit_rate;
  double range_ratio;
  double point_threshold;
  double scan_a;
};

std::vector<TracePoint> RunTrace(const TraceConfig& trace_config) {
  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;

  core::StoreConfig store_config;
  SimClock clock;
  auto env = NewMemEnv(&clock);
  store_config.lsm.env = env.get();
  store_config.lsm.block_size = 4 * 1024;
  store_config.lsm.table_file_size = 2 * 1024 * 1024;
  store_config.lsm.memtable_size = 2 * 1024 * 1024;
  store_config.lsm.level1_size_base = 8 * 1024 * 1024;
  store_config.lsm.enable_wal = false;
  store_config.dbname = "/trace";
  store_config.cache_budget = config.CacheBytes();
  store_config.adcache.controller.window_size = trace_config.window_size;
  store_config.adcache.controller.alpha = trace_config.alpha;
  store_config.adcache.controller.online_learning =
      trace_config.online_learning;
  Status s;
  auto store = core::CreateStore("adcache", store_config, &s);
  if (!s.ok()) std::abort();

  workload::KeySpace keys;
  keys.num_keys = config.num_keys;
  keys.value_size = config.value_size;
  workload::Runner runner(store.get(), keys, &clock);
  if (!runner.LoadDatabase().ok()) std::abort();

  std::vector<TracePoint> trace;
  uint64_t seed = 7;
  auto run_chunks = [&](const workload::Phase& phase, int chunks) {
    for (int c = 0; c < chunks; c++) {
      workload::Phase chunk = phase;
      chunk.num_ops = kChunkOps;
      workload::PhaseResult r = runner.RunPhase(chunk, seed++);
      core::CacheStatsSnapshot snap = store->GetCacheStats();
      trace.push_back(TracePoint{r.hit_rate, snap.range_ratio,
                                 snap.point_threshold, snap.scan_a});
    }
  };
  run_chunks(workload::PointLookupWorkload(kChunkOps), kWarmChunks);
  run_chunks(workload::ShortScanWorkload(kChunkOps), kShiftChunks);
  return trace;
}

void PrintHitRateTraces(const std::vector<TraceConfig>& configs) {
  std::vector<std::vector<TracePoint>> traces;
  traces.reserve(configs.size());
  for (const auto& c : configs) traces.push_back(RunTrace(c));

  std::printf("%-8s", "chunk");
  for (const auto& c : configs) std::printf(" %12s", c.label.c_str());
  std::printf("   (hit rate per %llu-op chunk; shift at chunk %d)\n",
              static_cast<unsigned long long>(kChunkOps), kWarmChunks);
  for (size_t i = 0; i < traces[0].size(); i++) {
    std::printf("%-8zu", i);
    for (const auto& t : traces) std::printf(" %12.3f", t[i].hit_rate);
    std::printf("%s\n", i == static_cast<size_t>(kWarmChunks) ? "  <- shift"
                                                              : "");
  }
}

void Run() {
  PrintBanner("Training-parameter sensitivity", "Figure 10",
              "all window sizes re-converge after the shift (10k slowest); "
              "alpha=0 overreacts; pretrained-frozen dips hardest; the "
              "range-cache ratio collapses toward 0 and the scan threshold "
              "settles near the scan length (16)");

  std::printf("\n--- Fig10(1): window size sweep (alpha=0.9) ---\n");
  PrintHitRateTraces({
      {"w=100", 100, 0.9, true},
      {"w=1000", 1000, 0.9, true},
      {"w=10000", 10000, 0.9, true},
      {"pretrained", 1000, 0.9, false},
  });

  std::printf("\n--- Fig10(2): smoothing factor sweep (window=1000) ---\n");
  PrintHitRateTraces({
      {"a=0", 1000, 0.0, true},
      {"a=0.5", 1000, 0.5, true},
      {"a=0.9", 1000, 0.9, true},
      {"pretrained", 1000, 0.9, false},
  });

  std::printf("\n--- Fig10(3): learned parameter evolution "
              "(window=1000, alpha=0.9) ---\n");
  std::vector<TracePoint> trace = RunTrace({"params", 1000, 0.9, true});
  std::printf("%-8s %12s %16s %12s\n", "chunk", "range_ratio",
              "freq_threshold", "scan_a");
  for (size_t i = 0; i < trace.size(); i++) {
    std::printf("%-8zu %12.3f %16.5f %12.1f%s\n", i, trace[i].range_ratio,
                trace[i].point_threshold, trace[i].scan_a,
                i == static_cast<size_t>(kWarmChunks) ? "  <- shift" : "");
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
