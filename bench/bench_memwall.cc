// Unified memory wall experiment (DESIGN.md §12): the same DRAM total run
// twice over a write-heavy <-> read-heavy phase-shift workload — once with
// the memtable/bloom shares frozen at the initial carve (the static split
// every engine ships), once with the RL controller re-carving the whole
// wall every window (actions 6 and 7). Adaptive must win the shifts: grow
// write buffers when stalls bite, shrink them back into cache when reads
// dominate. A Table-3 pass (legacy cache-only budget vs the wall) guards
// against regressions on the paper's original phases. Every cell is the
// mean over kSeeds runs: RL trajectories are chaotic, so single-seed
// deltas swing tens of percent run-to-run.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/statistics.h"

namespace adcache::bench {
namespace {

constexpr uint64_t kSeeds[] = {42, 97, 1234};

std::vector<workload::Phase> PhaseShift(uint64_t ops_per_phase) {
  using workload::OpMix;
  using workload::Phase;
  // A diurnal pattern — short write bursts, long read periods — run for two
  // full cycles so the second cycle shows the controller re-learning the
  // carve, not riding first-cycle luck. Re-carving costs a transition
  // (shrinking the memtable rotates its write-hot entries to L0), so the
  // read phases must be long enough for the bigger cache to pay it back;
  // symmetric 1:1 phases mostly measure transition churn.
  return {
      Phase{"W1", OpMix{10, 5, 0, 85}, ops_per_phase / 3, 0.9},
      Phase{"R1", OpMix{90, 9, 0, 1}, ops_per_phase, 0.9},
      Phase{"W2", OpMix{10, 5, 0, 85}, ops_per_phase / 3, 0.9},
      Phase{"R2", OpMix{90, 9, 0, 1}, ops_per_phase, 0.9},
  };
}

void PrintWall(BenchInstance* instance) {
  core::Statistics* stats = instance->store()->statistics();
  auto mb = [](double v) { return v / (1024.0 * 1024.0); };
  std::printf("      wall: block %.2fM range %.2fM memtable %.2fM "
              "bloom %.2fM (bits/key %.0f)\n",
              mb(stats->GetGauge(core::kGaugeBlockCacheCapacityBytes)),
              mb(stats->GetGauge(core::kGaugeRangeCacheCapacityBytes)),
              mb(stats->GetGauge(core::kGaugeMemtableCapacityBytes)),
              mb(stats->GetGauge(core::kGaugeBloomCapacityBytes)),
              stats->GetGauge(core::kGaugeBloomBitsPerKey));
}

// Seed-averaged aggregate of one (phase, configuration) cell.
struct Cell {
  uint64_t ops = 0;
  uint64_t sim_micros = 0;
  double hit_sum = 0;
  int runs = 0;

  void Add(const workload::PhaseResult& r) {
    ops += r.ops;
    sim_micros += r.elapsed_sim_micros;
    hit_sum += r.hit_rate;
    runs++;
  }
  double qps() const {
    return sim_micros == 0 ? 0
                           : static_cast<double>(ops) * 1e6 /
                                 static_cast<double>(sim_micros);
  }
  double hit() const { return runs == 0 ? 0 : hit_sum / runs; }
};

void Run() {
  BenchConfig config;
  config.num_keys = 8000;
  config.value_size = 1000;
  config.cache_fraction = 0.25;
  const uint64_t ops_per_phase = 20000;
  // One DRAM wall for both contestants: the legacy cache budget plus the
  // bytes the engine would otherwise spend on its (static) 2 MiB write
  // buffer. The carve decides how much of it each consumer gets.
  const size_t wall = config.CacheBytes() + 2 * 1024 * 1024;

  PrintBanner("Unified memory wall: adaptive vs static carve",
              "DESIGN.md §12 (extends paper §3.3/§4.2)",
              "adaptive re-carves memtable/bloom/cache per phase and beats "
              "the frozen split on both sides of the shift");

  std::printf("\n--- phase shift: write-heavy <-> read-heavy, wall = %.1f "
              "MiB, %zu-seed mean ---\n",
              static_cast<double>(wall) / (1024.0 * 1024.0),
              std::size(kSeeds));
  std::map<std::string, std::map<std::string, Cell>> cells;
  workload::PrintResultHeader();
  for (bool adaptive : {false, true}) {
    const char* label = adaptive ? "adaptive" : "static";
    for (uint64_t seed : kSeeds) {
      BenchConfig c = config;
      c.seed = seed;
      c.total_memory_budget = wall;
      c.memwall_adaptive = adaptive;
      BenchInstance instance("adcache", c);
      Status s = instance.Load();
      if (!s.ok()) {
        std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
        std::abort();
      }
      for (const auto& phase : PhaseShift(ops_per_phase)) {
        workload::PhaseResult r = instance.Run(phase);
        r.strategy = label;
        cells[phase.name][label].Add(r);
        if (seed == kSeeds[0]) {
          workload::PrintResult(r);
          PrintWall(&instance);
          std::fflush(stdout);
        }
      }
    }
  }

  std::printf("\n--- adaptive vs static per phase (%zu-seed mean) ---\n",
              std::size(kSeeds));
  std::printf("%-6s %12s %12s %9s %9s\n", "phase", "static_qps",
              "adaptive_qps", "delta", "hit_delta");
  Cell static_all, adaptive_all;
  for (const auto& phase : PhaseShift(ops_per_phase)) {
    const Cell& st = cells[phase.name]["static"];
    const Cell& ad = cells[phase.name]["adaptive"];
    static_all.ops += st.ops;
    static_all.sim_micros += st.sim_micros;
    adaptive_all.ops += ad.ops;
    adaptive_all.sim_micros += ad.sim_micros;
    std::printf("%-6s %12.0f %12.0f %+8.1f%% %+8.3f\n", phase.name.c_str(),
                st.qps(), ad.qps(),
                st.qps() == 0 ? 0 : (ad.qps() / st.qps() - 1) * 100,
                ad.hit() - st.hit());
  }
  std::printf("%-6s %12.0f %12.0f %+8.1f%%\n", "ALL", static_all.qps(),
              adaptive_all.qps(),
              static_all.qps() == 0
                  ? 0
                  : (adaptive_all.qps() / static_all.qps() - 1) * 100);

  // Guard: the wall must not cost anything on the paper's Table-3 phases.
  // Legacy mode (cache-only budget, static 2 MiB memtable) against the
  // unified wall holding the same total DRAM.
  std::printf("\n--- Table-3 guard: legacy budget vs unified wall (same "
              "DRAM, %zu-seed mean) ---\n",
              std::size(kSeeds));
  std::map<std::string, std::map<std::string, Cell>> guard;
  for (bool unified : {false, true}) {
    for (uint64_t seed : kSeeds) {
      BenchConfig c = config;
      c.seed = seed;
      if (unified) c.total_memory_budget = wall;
      BenchInstance instance("adcache", c);
      Status s = instance.Load();
      if (!s.ok()) {
        std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
        std::abort();
      }
      for (const auto& phase : workload::Table3Phases(ops_per_phase)) {
        guard[phase.name][unified ? "wall" : "legacy"].Add(
            instance.Run(phase));
      }
    }
  }
  std::printf("%-6s %12s %12s %9s\n", "phase", "legacy_qps", "wall_qps",
              "delta");
  for (const auto& phase : workload::Table3Phases(ops_per_phase)) {
    const Cell& legacy = guard[phase.name]["legacy"];
    const Cell& wallr = guard[phase.name]["wall"];
    std::printf("%-6s %12.0f %12.0f %+8.1f%%\n", phase.name.c_str(),
                legacy.qps(), wallr.qps(),
                legacy.qps() == 0 ? 0
                                  : (wallr.qps() / legacy.qps() - 1) * 100);
  }
}

}  // namespace
}  // namespace adcache::bench

int main() {
  adcache::bench::Run();
  return 0;
}
